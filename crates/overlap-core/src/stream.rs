//! Streaming JSONL ingest: fold an exported event stream back into
//! batch-identical aggregates with bounded memory.
//!
//! The batch pipeline folds events inside the instrumented process and reads
//! the result out at finalize. This module is the same fold turned inside
//! out: it consumes the `<id>.events.jsonl` export (see [`crate::trace::jsonl`])
//! line by line — from a file, a socket, or an HTTP body — and maintains the
//! identical running aggregates per `(scope, rank)`, so a long-running
//! service (`overlapd`) can answer overlap questions while runs are still in
//! flight.
//!
//! **Batch/stream equivalence.** For the same event stream, a
//! [`SessionFold`]'s outputs reconcile byte-identically with the batch
//! pipeline's: [`RankSummary`] carries the same totals, per-bin stats, call
//! stats, anomaly counters and [`MetricsRegistry`] contents as the rank's
//! [`crate::report::OverlapReport`]; the windowed series runs through
//! [`crate::trace::windowed_parts`]; and attribution artifacts run through
//! [`crate::artifact`] — the same constructors the batch CLI uses. Bound
//! records are consumed from the stream's `xfer_bounds` lines (authoritative:
//! the a-priori transfer-time table never leaves the instrumented process),
//! wait intervals from its `wait` lines, and everything re-derivable from the
//! raw events is re-derived by the exact processor fold.
//!
//! **Memory model.** Raw events pass through a capped [`EventRing`] and are
//! folded on overflow ([`FoldOpts::ring_capacity`]) — they are never
//! retained, so memory is O(sessions × ranks × ring) plus the *derived*
//! records the served artifacts require (one [`BoundRecord`] per transfer,
//! one span per top-level call, one interval per recorded wait), never
//! O(raw events).
//!
//! **Schema guard.** A stream must open with the
//! `{"ev":"header","schema_version":N}` line written by the exporter; a
//! missing or mismatched header is rejected with a one-line
//! [`StreamError`] before any state is touched.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Mutex;

use serde::Serialize;

use crate::artifact::{self, AttributionArtifact, RankArtifactInput, ScopeWaitStates};
use crate::attribution::{self, RankAttribution, WaitCause, WaitInterval};
use crate::bins::SizeBins;
use crate::bounds::OverlapBounds;
use crate::event::{Event, EventKind};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::queue::EventRing;
use crate::report::{Anomalies, CallStats, OverlapStats};
use crate::trace::{case_from_label, BoundRecord, RankWindowParts, WindowRow, SCHEMA_VERSION};

/// Intern a call/section name into a `&'static str`.
///
/// The event model carries static names (the instrumented library passes
/// string literals); a stream reader has to reconstruct them. Names are
/// leaked once into a process-global pool — the set of distinct call names
/// in any library is tiny and fixed, so the leak is bounded.
fn intern(s: &str) -> &'static str {
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&v) = pool.get(s) {
        return v;
    }
    let v: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.insert(v);
    v
}

/// Why a stream line (or stream) was rejected. Every variant renders as a
/// single line, suitable for a one-line client error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The stream did not open with a schema header line.
    MissingHeader,
    /// The stream's `schema_version` differs from this reader's
    /// [`SCHEMA_VERSION`].
    SchemaMismatch {
        /// The version the stream declared.
        found: u64,
    },
    /// A line was not valid JSONL of any known shape.
    BadLine {
        /// What was wrong, with a snippet of the offending line.
        detail: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::MissingHeader => write!(
                f,
                "missing schema header: stream must open with {{\"ev\":\"header\",\"schema_version\":{SCHEMA_VERSION}}}"
            ),
            StreamError::SchemaMismatch { found } => write!(
                f,
                "schema_version mismatch: stream declares {found}, this reader expects {SCHEMA_VERSION}"
            ),
            StreamError::BadLine { detail } => write!(f, "bad stream line: {detail}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Truncate a line for inclusion in an error message.
fn snip(line: &str) -> String {
    if line.len() <= 120 {
        line.to_string()
    } else {
        let mut s: String = line.chars().take(120).collect();
        s.push('…');
        s
    }
}

fn bad(line: &str, what: &str) -> StreamError {
    StreamError::BadLine {
        detail: format!("{what} in `{}`", snip(line)),
    }
}

fn req_u64(v: &serde_json::Value, key: &str, line: &str) -> Result<u64, StreamError> {
    v.get(key)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| bad(line, &format!("missing or non-numeric `{key}`")))
}

fn opt_u64(v: &serde_json::Value, key: &str, line: &str) -> Result<Option<u64>, StreamError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) if x.is_null() => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(line, &format!("non-numeric `{key}`"))),
    }
}

fn req_bool(v: &serde_json::Value, key: &str, line: &str) -> Result<bool, StreamError> {
    v.get(key)
        .and_then(|x| x.as_bool())
        .ok_or_else(|| bad(line, &format!("missing or non-boolean `{key}`")))
}

fn req_str<'v>(v: &'v serde_json::Value, key: &str, line: &str) -> Result<&'v str, StreamError> {
    v.get(key)
        .and_then(|x| x.as_str())
        .ok_or_else(|| bad(line, &format!("missing or non-string `{key}`")))
}

/// One parsed line of the JSONL stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamLine {
    /// The schema header line (always first in an export).
    Header {
        /// Declared schema version.
        schema_version: u64,
    },
    /// A raw instrumentation event.
    Event {
        /// Scope label the line belongs to.
        scope: String,
        /// Rank within the scope.
        rank: usize,
        /// The reconstructed event.
        event: Event,
    },
    /// A derived per-transfer bound record (`"ev":"xfer_bounds"`).
    Bound {
        /// Scope label the line belongs to.
        scope: String,
        /// Rank within the scope.
        rank: usize,
        /// The reconstructed record.
        record: BoundRecord,
    },
    /// A classified wait interval (`"ev":"wait"`).
    Wait {
        /// Scope label the line belongs to.
        scope: String,
        /// Rank within the scope.
        rank: usize,
        /// The reconstructed interval.
        wait: WaitInterval,
    },
    /// A fabric-side extra (`"ev":"fault"`); only the timestamp matters to
    /// the fold (the windowed series counts faults per window).
    Fault {
        /// Scope label the line belongs to.
        scope: String,
        /// Virtual timestamp, ns.
        t: u64,
    },
}

/// Parse one JSONL line into a [`StreamLine`]. Rejects unknown `ev` kinds
/// and malformed fields with a one-line [`StreamError`].
pub fn parse_line(line: &str) -> Result<StreamLine, StreamError> {
    let v: serde_json::Value =
        serde_json::from_str(line).map_err(|e| bad(line, &format!("not JSON ({e})")))?;
    let ev = req_str(&v, "ev", line)?;
    if ev == "header" {
        return Ok(StreamLine::Header {
            schema_version: req_u64(&v, "schema_version", line)?,
        });
    }
    let scope = req_str(&v, "scope", line)?.to_string();
    let t = req_u64(&v, "t", line)?;
    if ev == "fault" {
        return Ok(StreamLine::Fault { scope, t });
    }
    let rank = req_u64(&v, "rank", line)? as usize;
    let parsed = match ev {
        "call_enter" => StreamLine::Event {
            scope,
            rank,
            event: Event::new(
                t,
                EventKind::CallEnter {
                    name: intern(req_str(&v, "name", line)?),
                },
            ),
        },
        "call_exit" => StreamLine::Event {
            scope,
            rank,
            event: Event::new(t, EventKind::CallExit),
        },
        "xfer_begin" => StreamLine::Event {
            scope,
            rank,
            event: Event::new(
                t,
                EventKind::XferBegin {
                    id: req_u64(&v, "id", line)?,
                    bytes: req_u64(&v, "bytes", line)?,
                },
            ),
        },
        "xfer_end" => StreamLine::Event {
            scope,
            rank,
            event: Event::new(
                t,
                EventKind::XferEnd {
                    id: req_u64(&v, "id", line)?,
                    bytes: req_u64(&v, "bytes", line)?,
                },
            ),
        },
        "section_begin" => StreamLine::Event {
            scope,
            rank,
            event: Event::new(
                t,
                EventKind::SectionBegin {
                    name: intern(req_str(&v, "name", line)?),
                },
            ),
        },
        "section_end" => StreamLine::Event {
            scope,
            rank,
            event: Event::new(t, EventKind::SectionEnd),
        },
        "xfer_flag" => StreamLine::Event {
            scope,
            rank,
            event: Event::new(
                t,
                EventKind::XferFlag {
                    id: req_u64(&v, "id", line)?,
                },
            ),
        },
        "xfer_bounds" => {
            let case_s = req_str(&v, "case", line)?;
            let case = case_from_label(case_s).ok_or_else(|| bad(line, "unknown bound `case`"))?;
            StreamLine::Bound {
                scope,
                rank,
                record: BoundRecord {
                    id: opt_u64(&v, "id", line)?,
                    bytes: req_u64(&v, "bytes", line)?,
                    begin_t: opt_u64(&v, "begin_t", line)?,
                    end_t: t,
                    xfer_time: req_u64(&v, "xfer_time", line)?,
                    min: req_u64(&v, "min", line)?,
                    max: req_u64(&v, "max", line)?,
                    case,
                    flagged: req_bool(&v, "flagged", line)?,
                    clamped: req_bool(&v, "clamped", line)?,
                },
            }
        }
        "wait" => {
            let cause_s = req_str(&v, "cause", line)?;
            let cause =
                WaitCause::from_label(cause_s).ok_or_else(|| bad(line, "unknown wait `cause`"))?;
            StreamLine::Wait {
                scope,
                rank,
                wait: WaitInterval {
                    start: t,
                    end: req_u64(&v, "end", line)?,
                    cause,
                    xfer: opt_u64(&v, "xfer", line)?,
                },
            }
        }
        other => return Err(bad(line, &format!("unknown `ev` kind \"{other}\""))),
    };
    Ok(parsed)
}

/// Tuning knobs for a [`SessionFold`].
#[derive(Debug, Clone)]
pub struct FoldOpts {
    /// Capacity of the per-(scope, rank) event ring; events fold into the
    /// running aggregates whenever it fills. Minimum 2.
    pub ring_capacity: usize,
    /// Message-size bin layout; must match the instrumented process's layout
    /// (the default, [`SizeBins::default`], always does in this repository).
    pub bins: SizeBins,
}

impl Default for FoldOpts {
    fn default() -> Self {
        FoldOpts {
            ring_capacity: 4096,
            bins: SizeBins::default(),
        }
    }
}

/// One rank's streaming fold: the processor's interval sweep re-run on the
/// replayed events, plus the folded bound aggregates and the derived records
/// the read endpoints need.
struct RankFold {
    ring: EventRing,
    /// Reusable drain buffer so steady-state folding never allocates.
    scratch: Vec<Event>,
    ring_folds: u64,
    events_seen: u64,
    /// Max event timestamp seen (what the batch trace calls the rank's last
    /// stamp; closes a trailing open call span).
    last_event_t: u64,
    // --- interval sweep (mirrors Processor::advance_to) ---
    depth: u32,
    cursor: u64,
    first_t: Option<u64>,
    user_compute: u64,
    comm_call: u64,
    // --- per-call stats ---
    call_stack: Vec<(&'static str, u64)>,
    calls: BTreeMap<&'static str, CallStats>,
    // --- top-level call spans + flags (windowed series, attribution) ---
    closed_spans: Vec<(u64, u64, &'static str)>,
    open_span: Option<(u64, &'static str)>,
    flags: Vec<u64>,
    // --- anomaly mirrors ---
    active: BTreeSet<u64>,
    section_depth: u32,
    anomalies: Anomalies,
    // --- folded bound aggregates ---
    total: OverlapStats,
    by_bin: Vec<OverlapStats>,
    bounds: Vec<BoundRecord>,
    bounds_hi: u64,
    waits: Vec<WaitInterval>,
    // --- builtin metrics (same fields the batch processor maintains) ---
    xfers_closed: u64,
    xfers_flagged: u64,
    xfers_clamped: u64,
    calls_completed: u64,
    xfer_apriori_ns: Histogram,
    xfer_wall_ns: Histogram,
    call_latency_ns: Histogram,
    bin_hists: Vec<(Histogram, Histogram)>,
}

impl RankFold {
    fn new(ring_capacity: usize, nbins: usize) -> Self {
        RankFold {
            ring: EventRing::new(ring_capacity),
            scratch: Vec::with_capacity(ring_capacity),
            ring_folds: 0,
            events_seen: 0,
            last_event_t: 0,
            depth: 0,
            cursor: 0,
            first_t: None,
            user_compute: 0,
            comm_call: 0,
            call_stack: Vec::new(),
            calls: BTreeMap::new(),
            closed_spans: Vec::new(),
            open_span: None,
            flags: Vec::new(),
            active: BTreeSet::new(),
            section_depth: 0,
            anomalies: Anomalies::default(),
            total: OverlapStats::default(),
            by_bin: vec![OverlapStats::default(); nbins],
            bounds: Vec::new(),
            bounds_hi: 0,
            waits: Vec::new(),
            xfers_closed: 0,
            xfers_flagged: 0,
            xfers_clamped: 0,
            calls_completed: 0,
            xfer_apriori_ns: Histogram::latency_default(),
            xfer_wall_ns: Histogram::latency_default(),
            call_latency_ns: Histogram::latency_default(),
            bin_hists: (0..nbins)
                .map(|_| (Histogram::latency_default(), Histogram::latency_default()))
                .collect(),
        }
    }

    fn push_event(&mut self, e: Event) {
        self.events_seen += 1;
        self.last_event_t = self.last_event_t.max(e.t);
        if let Err(rejected) = self.ring.push(e) {
            self.ring_folds += 1;
            self.flush_ring();
            // Capacity >= 2, so the push cannot fail on an empty ring.
            let _ = self.ring.push(rejected.0);
        }
    }

    fn flush_ring(&mut self) {
        // fold_event needs `&mut self`, so stage the drained events in the
        // reusable scratch buffer first (no steady-state allocation).
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(self.ring.drain());
        for &e in &scratch {
            self.fold_event(e);
        }
        self.scratch = scratch;
    }

    /// `Processor::advance_to`, minus the per-transfer and per-section time
    /// accounting (the bound records arrive pre-derived on the stream, and
    /// the streaming summary does not reproduce section reports).
    fn advance_to(&mut self, t: u64) {
        if self.first_t.is_none() {
            self.first_t = Some(t);
            self.cursor = t;
            return;
        }
        if t < self.cursor {
            self.anomalies.clock_skew += 1;
            return;
        }
        let dt = t - self.cursor;
        if dt == 0 {
            return;
        }
        if self.depth == 0 {
            self.user_compute += dt;
        } else {
            self.comm_call += dt;
        }
        self.cursor = t;
    }

    fn fold_event(&mut self, e: Event) {
        self.advance_to(e.t);
        match e.kind {
            EventKind::CallEnter { name } => {
                if self.depth == 0 {
                    self.open_span = Some((e.t, name));
                }
                self.depth += 1;
                self.call_stack.push((name, e.t));
            }
            EventKind::CallExit => {
                if self.depth == 0 {
                    self.anomalies.unbalanced_calls += 1;
                } else {
                    self.depth -= 1;
                    if self.depth == 0 {
                        if let Some((s, _)) = self.open_span.take() {
                            self.closed_spans.push((
                                s,
                                e.t,
                                // The span keeps the *outermost* call's name.
                                self.call_stack
                                    .first()
                                    .map(|&(n, _)| n)
                                    .unwrap_or("(unknown)"),
                            ));
                        }
                    }
                    if let Some((name, t0)) = self.call_stack.pop() {
                        let c = self.calls.entry(name).or_default();
                        c.count += 1;
                        let dt = e.t.saturating_sub(t0);
                        c.total_time += dt;
                        self.calls_completed += 1;
                        self.call_latency_ns.observe(dt);
                    }
                }
            }
            EventKind::XferBegin { id, .. } => {
                if !self.active.insert(id) {
                    self.anomalies.duplicate_begin += 1;
                }
            }
            EventKind::XferEnd { id, .. } => {
                self.active.remove(&id);
            }
            EventKind::XferFlag { id } => {
                self.flags.push(e.t);
                if !self.active.contains(&id) {
                    self.anomalies.orphan_flags += 1;
                }
            }
            EventKind::SectionBegin { .. } => {
                self.section_depth += 1;
            }
            EventKind::SectionEnd => {
                if self.section_depth == 0 {
                    self.anomalies.unbalanced_sections += 1;
                } else {
                    self.section_depth -= 1;
                }
            }
        }
    }

    /// `Processor::close_transfer`'s aggregate/metric effects, replayed from
    /// the authoritative bound record on the stream.
    fn fold_bound(&mut self, rec: BoundRecord, bins: &SizeBins) {
        let b = OverlapBounds {
            min: rec.min,
            max: rec.max,
            case: rec.case,
        };
        let bin = bins.index(rec.bytes);
        for s in [&mut self.total, &mut self.by_bin[bin]] {
            s.add_bounds(rec.bytes, rec.xfer_time, b);
            if rec.flagged {
                s.note_flagged();
            }
            if rec.clamped {
                s.note_clamped();
            }
        }
        self.xfers_closed += 1;
        if rec.flagged {
            self.xfers_flagged += 1;
        }
        if rec.clamped {
            self.xfers_clamped += 1;
        }
        self.xfer_apriori_ns.observe(rec.xfer_time);
        if let Some(t0) = rec.begin_t {
            self.xfer_wall_ns.observe(rec.end_t.saturating_sub(t0));
        }
        let (min_h, max_h) = &mut self.bin_hists[bin];
        min_h.observe(rec.min);
        max_h.observe(rec.max);
        self.bounds_hi = self.bounds_hi.max(rec.end_t);
        self.bounds.push(rec);
    }

    /// Call spans in the shape [`attribution::call_spans_of`] derives from a
    /// captured trace: a trailing open call closes at the last event stamp.
    fn attr_spans(&self) -> Vec<(u64, u64, &'static str)> {
        let mut spans = self.closed_spans.clone();
        if let Some((s, name)) = self.open_span {
            if self.last_event_t > s {
                spans.push((s, self.last_event_t, name));
            }
        }
        spans
    }

    /// Call spans in the shape the windowed series consumes (trailing open
    /// call closes at the scope span's end `t1`).
    fn window_spans(&self, t1: u64) -> Vec<(u64, u64)> {
        let mut spans: Vec<(u64, u64)> =
            self.closed_spans.iter().map(|&(s, e, _)| (s, e)).collect();
        if let Some((s, _)) = self.open_span {
            spans.push((s, t1));
        }
        spans
    }

    fn attribution(&mut self, rank: usize) -> RankAttribution {
        self.flush_ring();
        attribution::attribute_parts(rank, &self.attr_spans(), &self.waits, &self.bounds)
    }

    fn summary(&mut self, rank: usize, bins: &SizeBins) -> RankSummary {
        self.flush_ring();
        // The batch pipeline finishes at the rank's final stamp; sweep the
        // residual interval on the side so a live snapshot never perturbs
        // the ongoing fold.
        let end = self.last_event_t.max(self.bounds_hi);
        let mut user = self.user_compute;
        let mut comm = self.comm_call;
        if self.first_t.is_some() && end > self.cursor {
            let dt = end - self.cursor;
            if self.depth == 0 {
                user += dt;
            } else {
                comm += dt;
            }
        }
        let elapsed = end.saturating_sub(self.first_t.unwrap_or(end));
        let mut metrics = MetricsRegistry::new();
        for (name, v) in [
            ("xfers_closed", self.xfers_closed),
            ("xfers_flagged", self.xfers_flagged),
            ("xfers_clamped", self.xfers_clamped),
            ("calls_completed", self.calls_completed),
        ] {
            if v > 0 {
                metrics.inc(name, v);
            }
        }
        for (name, h) in [
            ("xfer_apriori_ns", &self.xfer_apriori_ns),
            ("xfer_wall_ns", &self.xfer_wall_ns),
            ("call_latency_ns", &self.call_latency_ns),
        ] {
            if h.count() > 0 {
                metrics.histograms.insert(name.to_string(), h.clone());
            }
        }
        let bin_labels = bins.labels();
        for ((min_h, max_h), label) in self.bin_hists.iter().zip(&bin_labels) {
            if min_h.count() > 0 {
                metrics
                    .histograms
                    .insert(format!("overlap_min_ns/{label}"), min_h.clone());
            }
            if max_h.count() > 0 {
                metrics
                    .histograms
                    .insert(format!("overlap_max_ns/{label}"), max_h.clone());
            }
        }
        let attr =
            attribution::attribute_parts(rank, &self.attr_spans(), &self.waits, &self.bounds);
        attribution::fold_metrics(&attr, bins, &mut metrics);
        RankSummary {
            rank,
            elapsed,
            user_compute_time: user,
            comm_call_time: comm,
            total: self.total,
            bin_labels,
            by_bin: self.by_bin.clone(),
            calls: self
                .calls
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            events_seen: self.events_seen,
            ring_folds: self.ring_folds,
            anomalies: self.anomalies,
            metrics,
        }
    }
}

/// One scope's streaming fold: per-rank folds plus the scope-level span and
/// fabric extras the windowed series needs.
#[derive(Default)]
struct ScopeFold {
    ranks: BTreeMap<usize, RankFold>,
    extras_t: Vec<u64>,
    lo: u64,
    hi: u64,
    any: bool,
}

impl ScopeFold {
    /// Track the covered span exactly as [`crate::trace::TraceBundle::span`]
    /// does: event stamps, bound close/begin stamps, and extras — not waits.
    fn see(&mut self, t: u64) {
        if !self.any {
            self.lo = t;
            self.hi = t;
            self.any = true;
        } else {
            self.lo = self.lo.min(t);
            self.hi = self.hi.max(t);
        }
    }

    fn rank_mut(&mut self, rank: usize, opts: &FoldOpts) -> &mut RankFold {
        let nbins = opts.bins.count();
        let cap = opts.ring_capacity;
        self.ranks
            .entry(rank)
            .or_insert_with(|| RankFold::new(cap, nbins))
    }

    fn series(&mut self, scope: &str, width: Option<u64>) -> ScopeSeries {
        if !self.any {
            return ScopeSeries {
                scope: scope.to_string(),
                window_ns: width.unwrap_or(1).max(1),
                windows: Vec::new(),
            };
        }
        let (t0, t1) = (self.lo, self.hi);
        let window_ns = width
            .unwrap_or_else(|| (t1.saturating_sub(t0) / 16).max(1))
            .max(1);
        for rf in self.ranks.values_mut() {
            rf.flush_ring();
        }
        let spans: Vec<Vec<(u64, u64)>> =
            self.ranks.values().map(|rf| rf.window_spans(t1)).collect();
        let parts: Vec<RankWindowParts<'_>> = self
            .ranks
            .values()
            .zip(&spans)
            .map(|(rf, sp)| RankWindowParts {
                bounds: &rf.bounds,
                call_spans: sp,
                flags: &rf.flags,
            })
            .collect();
        ScopeSeries {
            scope: scope.to_string(),
            window_ns,
            windows: crate::trace::windowed_parts((t0, t1), &parts, &self.extras_t, window_ns),
        }
    }
}

/// One rank's live summary — the streaming analogue of
/// [`crate::report::OverlapReport`] (minus section reports and the
/// recorder-side queue counters, which never ride the export).
#[derive(Debug, Clone, Serialize)]
pub struct RankSummary {
    /// Rank index.
    pub rank: usize,
    /// Time between the rank's first and last stamps, ns.
    pub elapsed: u64,
    /// Aggregate user computation time, ns.
    pub user_compute_time: u64,
    /// Aggregate communication call time, ns.
    pub comm_call_time: u64,
    /// Overall overlap measures.
    pub total: OverlapStats,
    /// Labels of the size bins, in order.
    pub bin_labels: Vec<String>,
    /// Per-size-bin overlap measures.
    pub by_bin: Vec<OverlapStats>,
    /// Per-call-name statistics.
    pub calls: BTreeMap<String, CallStats>,
    /// Raw event lines folded for this rank.
    pub events_seen: u64,
    /// Times the streaming ring filled and was folded.
    pub ring_folds: u64,
    /// Stream irregularities absorbed during the fold.
    pub anomalies: Anomalies,
    /// Metrics registry — byte-identical contents to the batch report's.
    pub metrics: MetricsRegistry,
}

/// One scope's live report: per-rank summaries in rank order.
#[derive(Debug, Clone, Serialize)]
pub struct ScopeReport {
    /// Scope label.
    pub scope: String,
    /// Per-rank summaries.
    pub ranks: Vec<RankSummary>,
}

/// One scope's live windowed series (the trace-window JSON shape).
#[derive(Debug, Clone, Serialize)]
pub struct ScopeSeries {
    /// Scope label.
    pub scope: String,
    /// Window width, ns.
    pub window_ns: u64,
    /// The windows, in time order.
    pub windows: Vec<WindowRow>,
}

/// A streaming session: one pushed event stream (one or more scopes), folded
/// incrementally. See the module docs for the memory model and the
/// batch/stream equivalence guarantee.
pub struct SessionFold {
    opts: FoldOpts,
    header_seen: bool,
    scope_order: Vec<String>,
    scopes: BTreeMap<String, ScopeFold>,
    event_lines: u64,
    lines: u64,
}

impl Default for SessionFold {
    fn default() -> Self {
        SessionFold::new(FoldOpts::default())
    }
}

impl SessionFold {
    /// Create an empty session fold.
    pub fn new(opts: FoldOpts) -> Self {
        SessionFold {
            opts,
            header_seen: false,
            scope_order: Vec::new(),
            scopes: BTreeMap::new(),
            event_lines: 0,
            lines: 0,
        }
    }

    /// True once a valid schema header has been accepted.
    pub fn header_seen(&self) -> bool {
        self.header_seen
    }

    /// Raw event lines folded so far (across all scopes and ranks).
    pub fn event_lines(&self) -> u64 {
        self.event_lines
    }

    /// Total non-empty lines accepted so far (header lines included).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Scope labels in first-seen (stream) order — the order the batch
    /// exporter wrote them, which read endpoints preserve.
    pub fn scope_names(&self) -> Vec<String> {
        self.scope_order.clone()
    }

    /// Fold one line. Empty/whitespace lines are ignored. The first
    /// meaningful line must be a valid schema header; every error is
    /// one-line and leaves previously folded state intact.
    pub fn push_line(&mut self, line: &str) -> Result<(), StreamError> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        let parsed = parse_line(line)?;
        if let StreamLine::Header { schema_version } = parsed {
            if schema_version != u64::from(SCHEMA_VERSION) {
                return Err(StreamError::SchemaMismatch {
                    found: schema_version,
                });
            }
            // Repeated headers are fine: every pushed file/scope chunk
            // re-states the schema.
            self.header_seen = true;
            self.lines += 1;
            return Ok(());
        }
        if !self.header_seen {
            return Err(StreamError::MissingHeader);
        }
        self.lines += 1;
        let opts = &self.opts;
        match parsed {
            StreamLine::Header { .. } => unreachable!("handled above"),
            StreamLine::Event { scope, rank, event } => {
                self.event_lines += 1;
                let sf = scope_entry(&mut self.scope_order, &mut self.scopes, &scope);
                sf.see(event.t);
                sf.rank_mut(rank, opts).push_event(event);
            }
            StreamLine::Bound {
                scope,
                rank,
                record,
            } => {
                let sf = scope_entry(&mut self.scope_order, &mut self.scopes, &scope);
                sf.see(record.end_t);
                if let Some(t0) = record.begin_t {
                    sf.see(t0);
                }
                sf.rank_mut(rank, opts).fold_bound(record, &opts.bins);
            }
            StreamLine::Wait { scope, rank, wait } => {
                let sf = scope_entry(&mut self.scope_order, &mut self.scopes, &scope);
                sf.rank_mut(rank, opts).waits.push(wait);
            }
            StreamLine::Fault { scope, t } => {
                let sf = scope_entry(&mut self.scope_order, &mut self.scopes, &scope);
                sf.see(t);
                sf.extras_t.push(t);
            }
        }
        Ok(())
    }

    /// Fold a block of complete lines (convenience for clients and tests).
    pub fn push_text(&mut self, text: &str) -> Result<(), StreamError> {
        for line in text.lines() {
            self.push_line(line)?;
        }
        Ok(())
    }

    /// Per-scope, per-rank live summaries, scopes in stream order.
    pub fn report(&mut self) -> Vec<ScopeReport> {
        let order = self.scope_order.clone();
        let bins = self.opts.bins.clone();
        order
            .iter()
            .map(|scope| {
                let sf = self.scopes.get_mut(scope).expect("ordered scope exists");
                let ranks = sf
                    .ranks
                    .iter_mut()
                    .map(|(&rank, rf)| rf.summary(rank, &bins))
                    .collect();
                ScopeReport {
                    scope: scope.clone(),
                    ranks,
                }
            })
            .collect()
    }

    /// Per-scope live windowed series, scopes in stream order. `width` of
    /// `None` picks each scope's default (1/16th of its span, min 1 ns) —
    /// the same default the batch trace export uses.
    pub fn series(&mut self, width: Option<u64>) -> Vec<ScopeSeries> {
        let order = self.scope_order.clone();
        order
            .iter()
            .map(|scope| {
                let sf = self.scopes.get_mut(scope).expect("ordered scope exists");
                sf.series(scope, width)
            })
            .collect()
    }

    /// Per-scope wait-state breakdowns (the `--json` report shape).
    pub fn wait_states(&mut self) -> Vec<ScopeWaitStates> {
        let order = self.scope_order.clone();
        order
            .iter()
            .map(|scope| {
                let sf = self.scopes.get_mut(scope).expect("ordered scope exists");
                let ranks = sf
                    .ranks
                    .iter_mut()
                    .map(|(&rank, rf)| artifact::rank_wait_states(&rf.attribution(rank)))
                    .collect();
                ScopeWaitStates {
                    scope: scope.clone(),
                    ranks,
                }
            })
            .collect()
    }

    /// The `<id>.attribution.json` artifact for everything folded so far —
    /// byte-identical to the batch `--critical-path` output for the same
    /// stream (same shared constructor, same inputs).
    pub fn attribution(&mut self, id: &str) -> AttributionArtifact {
        let order = self.scope_order.clone();
        let scoped: Vec<(String, Vec<RankArtifactInput>)> = order
            .iter()
            .map(|scope| {
                let sf = self.scopes.get_mut(scope).expect("ordered scope exists");
                let inputs = sf
                    .ranks
                    .iter_mut()
                    .map(|(&rank, rf)| RankArtifactInput {
                        events: rf.events_seen,
                        attribution: rf.attribution(rank),
                    })
                    .collect();
                (scope.clone(), inputs)
            })
            .collect();
        artifact::attribution_artifact(id, &scoped)
    }

    /// The `<id>.critpath.folded` flamegraph text for everything folded so
    /// far — byte-identical to the batch output for the same stream.
    pub fn collapsed(&mut self) -> String {
        let order = self.scope_order.clone();
        let mut out = String::new();
        for scope in &order {
            let sf = self.scopes.get_mut(scope).expect("ordered scope exists");
            let mut weights: BTreeMap<String, u64> = BTreeMap::new();
            for (&rank, rf) in sf.ranks.iter_mut() {
                rf.flush_ring();
                attribution::collapsed_weights(
                    scope,
                    rank,
                    &rf.attr_spans(),
                    &rf.waits,
                    &mut weights,
                );
            }
            out.push_str(&attribution::render_collapsed(&weights));
        }
        out
    }
}

fn scope_entry<'a>(
    order: &mut Vec<String>,
    scopes: &'a mut BTreeMap<String, ScopeFold>,
    scope: &str,
) -> &'a mut ScopeFold {
    if !scopes.contains_key(scope) {
        order.push(scope.to_string());
        scopes.insert(scope.to_string(), ScopeFold::default());
    }
    scopes.get_mut(scope).expect("just inserted")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::attribute;
    use crate::bounds::XferCase;
    use crate::trace::{jsonl, windowed, ExtraEvent, RankTrace, TraceBundle};

    fn ev(t: u64, kind: EventKind) -> Event {
        Event::new(t, kind)
    }

    fn sample_bundle() -> TraceBundle {
        TraceBundle {
            scope: "test/one".to_string(),
            ranks: vec![RankTrace {
                rank: 0,
                events: vec![
                    ev(0, EventKind::CallEnter { name: "MPI_Isend" }),
                    ev(5, EventKind::XferBegin { id: 1, bytes: 1024 }),
                    ev(10, EventKind::CallExit),
                    ev(1_000, EventKind::CallEnter { name: "MPI_Wait" }),
                    ev(1_200, EventKind::XferFlag { id: 1 }),
                    ev(1_500, EventKind::XferEnd { id: 1, bytes: 1024 }),
                    ev(1_510, EventKind::CallExit),
                ],
                bounds: vec![BoundRecord {
                    id: Some(1),
                    bytes: 1024,
                    begin_t: Some(5),
                    end_t: 1_500,
                    xfer_time: 400,
                    min: 0,
                    max: 400,
                    case: XferCase::SplitCalls,
                    flagged: true,
                    clamped: false,
                }],
                waits: vec![WaitInterval {
                    start: 1_000,
                    end: 1_500,
                    cause: WaitCause::LateSender,
                    xfer: Some(1),
                }],
            }],
            extras: vec![ExtraEvent {
                t: 1_100,
                name: "fault.dropped".to_string(),
                detail: "src 0 -> dst 1".to_string(),
            }],
        }
    }

    fn fold(text: &str) -> SessionFold {
        let mut s = SessionFold::default();
        s.push_text(text).expect("stream folds");
        s
    }

    #[test]
    fn rejects_missing_header_with_one_line_error() {
        let mut s = SessionFold::default();
        let err = s
            .push_line(r#"{"scope":"x","rank":0,"t":0,"ev":"call_exit"}"#)
            .unwrap_err();
        assert_eq!(err, StreamError::MissingHeader);
        assert!(!format!("{err}").contains('\n'));
    }

    #[test]
    fn rejects_schema_mismatch_with_one_line_error() {
        let mut s = SessionFold::default();
        let err = s
            .push_line(r#"{"ev":"header","schema_version":999}"#)
            .unwrap_err();
        assert_eq!(err, StreamError::SchemaMismatch { found: 999 });
        let msg = format!("{err}");
        assert!(msg.contains("999") && !msg.contains('\n'));
        assert!(!s.header_seen());
    }

    #[test]
    fn rejects_garbage_and_unknown_kinds() {
        assert!(matches!(
            parse_line("not json at all"),
            Err(StreamError::BadLine { .. })
        ));
        assert!(matches!(
            parse_line(r#"{"scope":"x","rank":0,"t":0,"ev":"mystery"}"#),
            Err(StreamError::BadLine { .. })
        ));
    }

    #[test]
    fn stream_summary_matches_bound_aggregates() {
        let text = jsonl(&[sample_bundle()]);
        let mut s = fold(&text);
        assert!(s.header_seen());
        assert_eq!(s.event_lines(), 7);
        let reports = s.report();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].scope, "test/one");
        let r = &reports[0].ranks[0];
        assert_eq!(r.rank, 0);
        assert_eq!(r.total.transfers, 1);
        assert_eq!(r.total.max_overlap, 400);
        assert_eq!(r.total.flagged, 1);
        assert_eq!(r.elapsed, 1_510);
        assert_eq!(r.comm_call_time, 10 + 510);
        assert_eq!(r.user_compute_time, 990);
        assert_eq!(r.calls["MPI_Wait"].count, 1);
        assert_eq!(r.metrics.counter("xfers_closed"), 1);
        assert_eq!(r.metrics.counter("xfers_flagged"), 1);
        assert!(r.metrics.histogram("xfer_wall_ns").is_some());
    }

    #[test]
    fn stream_series_matches_batch_windowed() {
        let b = sample_bundle();
        let text = jsonl(std::slice::from_ref(&b));
        let mut s = fold(&text);
        for width in [1, 100, 500, 5_000] {
            let series = s.series(Some(width));
            assert_eq!(series.len(), 1);
            assert_eq!(series[0].windows, windowed(&b, width));
        }
        // The default width matches the batch default too.
        let series = s.series(None);
        assert_eq!(
            series[0].windows,
            windowed(&b, crate::trace::default_window_width(&b))
        );
    }

    #[test]
    fn stream_attribution_matches_batch_artifact() {
        let b = sample_bundle();
        let text = jsonl(std::slice::from_ref(&b));
        let mut s = fold(&text);
        let batch_inputs: Vec<(String, Vec<RankArtifactInput>)> = vec![(
            b.scope.clone(),
            b.ranks
                .iter()
                .map(|tr| RankArtifactInput {
                    events: tr.events.len() as u64,
                    attribution: attribute(tr),
                })
                .collect(),
        )];
        let batch = artifact::attribution_artifact("test", &batch_inputs);
        let stream = s.attribution("test");
        assert_eq!(
            serde_json::to_string_pretty(&stream).unwrap(),
            serde_json::to_string_pretty(&batch).unwrap(),
            "attribution artifacts must be byte-identical"
        );
        // And the collapsed flamegraph text.
        let batch_folded = attribution::collapsed_stack(&b);
        assert_eq!(s.collapsed(), batch_folded);
    }

    #[test]
    fn empty_session_serves_empty_views() {
        let mut s = SessionFold::default();
        s.push_line(r#"{"ev":"header","schema_version":1}"#)
            .unwrap();
        assert!(s.report().is_empty());
        assert!(s.series(None).is_empty());
        assert!(s.collapsed().is_empty());
        let art = s.attribution("empty");
        assert!(art.scopes.is_empty());
        assert_eq!(art.overhead.ranks, 0);
    }

    #[test]
    fn tiny_ring_folds_at_capacity_without_changing_results() {
        let b = sample_bundle();
        let text = jsonl(std::slice::from_ref(&b));
        let mut big = SessionFold::default();
        big.push_text(&text).unwrap();
        let mut tiny = SessionFold::new(FoldOpts {
            ring_capacity: 2,
            bins: SizeBins::default(),
        });
        tiny.push_text(&text).unwrap();
        let (big_r, tiny_r) = (big.report(), tiny.report());
        assert!(tiny_r[0].ranks[0].ring_folds > 0);
        assert_eq!(
            serde_json::to_string(&big_r[0].ranks[0].metrics).unwrap(),
            serde_json::to_string(&tiny_r[0].ranks[0].metrics).unwrap()
        );
        assert_eq!(big_r[0].ranks[0].total, tiny_r[0].ranks[0].total);
        assert_eq!(
            big_r[0].ranks[0].user_compute_time,
            tiny_r[0].ranks[0].user_compute_time
        );
    }

    #[test]
    fn mid_stream_snapshot_does_not_perturb_final_state() {
        let b = sample_bundle();
        let text = jsonl(std::slice::from_ref(&b));
        let lines: Vec<&str> = text.lines().collect();
        let mut s = SessionFold::default();
        // Push half, snapshot, push the rest: final report must equal the
        // uninterrupted fold.
        for l in &lines[..5] {
            s.push_line(l).unwrap();
        }
        let _ = s.report();
        let _ = s.series(None);
        for l in &lines[5..] {
            s.push_line(l).unwrap();
        }
        let mut clean = fold(&text);
        assert_eq!(
            serde_json::to_string(&s.report()).unwrap(),
            serde_json::to_string(&clean.report()).unwrap()
        );
    }
}
