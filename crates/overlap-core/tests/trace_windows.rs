//! Edge-case tests for the windowed time-resolved series
//! (`overlap_core::trace::windowed`).
//!
//! The windowed fold backs the `trace_windows` section of `repro --json`
//! reports, so its boundary behaviour (empty ranks, events landing exactly
//! on window edges, call spans crossing windows, calls still open at
//! shutdown) must be pinned down.

use overlap_core::bounds::XferCase;
use overlap_core::event::{Event, EventKind};
use overlap_core::trace::{default_window_width, windowed, BoundRecord, RankTrace, TraceBundle};

fn ev(t: u64, kind: EventKind) -> Event {
    Event::new(t, kind)
}

fn bound(end_t: u64, min: u64, max: u64) -> BoundRecord {
    BoundRecord {
        id: Some(1),
        bytes: 1024,
        begin_t: None,
        end_t,
        xfer_time: 0,
        min,
        max,
        case: XferCase::SingleStamp,
        flagged: false,
        clamped: false,
    }
}

fn rank(rank: usize, events: Vec<Event>, bounds: Vec<BoundRecord>) -> RankTrace {
    RankTrace {
        rank,
        events,
        bounds,
        waits: vec![],
    }
}

#[test]
fn empty_bundle_yields_no_windows() {
    let bundle = TraceBundle::default();
    assert!(windowed(&bundle, 100).is_empty());
    assert_eq!(default_window_width(&bundle), 1);
}

#[test]
fn empty_rank_contributes_nothing() {
    // Rank 1 recorded nothing (e.g. a pure-compute rank): the fold must
    // neither panic nor perturb the populated rank's rows.
    let populated = vec![rank(
        0,
        vec![
            ev(0, EventKind::CallEnter { name: "MPI_Wait" }),
            ev(40, EventKind::CallExit),
        ],
        vec![bound(40, 10, 20)],
    )];
    let mut with_empty = populated.clone();
    with_empty.push(rank(1, Vec::new(), Vec::new()));

    let a = windowed(
        &TraceBundle {
            scope: "t/a".into(),
            ranks: populated,
            extras: Vec::new(),
        },
        16,
    );
    let b = windowed(
        &TraceBundle {
            scope: "t/b".into(),
            ranks: with_empty,
            extras: Vec::new(),
        },
        16,
    );
    assert_eq!(a, b);
    assert_eq!(a.iter().map(|w| w.transfers).sum::<u64>(), 1);
}

#[test]
fn single_event_bundle_gets_one_covering_window() {
    // A bundle whose span is a single instant: exactly one window, anchored
    // at the event and keeping its full width.
    let bundle = TraceBundle {
        scope: "t/single".into(),
        ranks: vec![rank(0, Vec::new(), vec![bound(1_000, 3, 7)])],
        extras: Vec::new(),
    };
    let rows = windowed(&bundle, 100);
    assert_eq!(rows.len(), 1);
    assert_eq!((rows[0].start, rows[0].end), (1_000, 1_100));
    assert_eq!(rows[0].transfers, 1);
    assert_eq!(rows[0].min_overlap_ns, 3);
    assert_eq!(rows[0].max_overlap_ns, 7);
}

#[test]
fn event_exactly_on_a_window_boundary_lands_in_the_later_window() {
    // Windows are half-open [start, end): a close at t0 + width belongs to
    // window 1, not window 0.
    let bundle = TraceBundle {
        scope: "t/boundary".into(),
        ranks: vec![rank(0, Vec::new(), vec![bound(0, 0, 0), bound(100, 5, 9)])],
        extras: Vec::new(),
    };
    let rows = windowed(&bundle, 100);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].transfers, 1);
    assert_eq!(rows[1].transfers, 1);
    assert_eq!(rows[1].min_overlap_ns, 5);
    // The final window is stretched to cover the last timestamp.
    assert!(rows[1].end > 100);
}

#[test]
fn call_spanning_windows_splits_wait_exactly() {
    // One top-level call from 50 to 450 under width 100: the in-call time
    // must split 50/100/100/100/50 across the five windows with no ns lost.
    let bundle = TraceBundle {
        scope: "t/fold".into(),
        ranks: vec![rank(
            0,
            vec![
                ev(
                    0,
                    EventKind::CallEnter {
                        name: "MPI_Barrier",
                    },
                ),
                ev(0, EventKind::CallExit),
                ev(50, EventKind::CallEnter { name: "MPI_Wait" }),
                ev(450, EventKind::CallExit),
            ],
            Vec::new(),
        )],
        extras: Vec::new(),
    };
    let rows = windowed(&bundle, 100);
    assert_eq!(rows.len(), 5);
    let waits: Vec<u64> = rows.iter().map(|w| w.wait_ns).collect();
    assert_eq!(waits, vec![50, 100, 100, 100, 50]);
    assert_eq!(waits.iter().sum::<u64>(), 400);
}

#[test]
fn nested_calls_count_only_the_outermost_span() {
    // A nested CallEnter (library calling into itself) must not double-count
    // wait time: only the outer [10, 90] span is credited.
    let bundle = TraceBundle {
        scope: "t/nested".into(),
        ranks: vec![rank(
            0,
            vec![
                ev(
                    10,
                    EventKind::CallEnter {
                        name: "MPI_Waitall",
                    },
                ),
                ev(20, EventKind::CallEnter { name: "MPI_Test" }),
                ev(30, EventKind::CallExit),
                ev(90, EventKind::CallExit),
            ],
            Vec::new(),
        )],
        extras: Vec::new(),
    };
    let rows = windowed(&bundle, 1_000);
    assert_eq!(rows.iter().map(|w| w.wait_ns).sum::<u64>(), 80);
}

#[test]
fn call_open_at_shutdown_credits_wait_to_span_end() {
    // A call with no exit (rank died / trace truncated) is folded as if it
    // ran to the bundle's last timestamp.
    let bundle = TraceBundle {
        scope: "t/open".into(),
        ranks: vec![rank(
            0,
            vec![ev(10, EventKind::CallEnter { name: "MPI_Recv" })],
            vec![bound(310, 0, 0)],
        )],
        extras: Vec::new(),
    };
    let rows = windowed(&bundle, 100);
    assert_eq!(rows.iter().map(|w| w.wait_ns).sum::<u64>(), 300);
}
