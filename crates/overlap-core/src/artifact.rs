//! Serialized attribution-artifact shapes shared by the batch CLI and the
//! streaming server.
//!
//! `repro --critical-path <dir>` and `overlapd`'s on-demand artifact
//! endpoints must emit **byte-identical** files for the same event stream,
//! so the types (field names, field order, omission rules) and the builders
//! live here, beneath both consumers. The batch side
//! (`bench::critpath`) folds captured [`crate::trace::TraceBundle`]s into
//! [`RankArtifactInput`]s; the streaming side ([`crate::stream`]) maintains
//! the same inputs incrementally — both then run the same construction.
//!
//! Everything here is a pure function of its inputs (virtual time only):
//! byte-identical across runs, worker counts, and batch vs. stream.

use crate::attribution::{RankAttribution, WaitCause};

/// Total attributed nanoseconds for one cause (stable label from
/// [`WaitCause::label`]).
#[derive(Debug, Clone, serde::Serialize)]
pub struct CauseTotal {
    /// Cause label (e.g. `"late_sender"`).
    pub cause: String,
    /// Attributed nanoseconds.
    pub ns: u64,
}

/// One rank's wait-state summary within a scope.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RankWaitStates {
    /// Rank index.
    pub rank: usize,
    /// Blocking intervals the library classified.
    pub wait_intervals: usize,
    /// Σ provably-non-overlapped transfer time, ns (`xfer_time −
    /// max_overlap` over all transfers).
    pub nonoverlap_ns: u64,
    /// Per-cause attributed totals in canonical cause order, zero causes
    /// omitted. Sums to `nonoverlap_ns`.
    pub causes: Vec<CauseTotal>,
}

/// Per-rank wait-state breakdown of one traced scope, as merged into the
/// `--json` run report and served live by the streaming server.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScopeWaitStates {
    /// Scope label (`"<harness>/<point>"`).
    pub scope: String,
    /// Per-rank summaries, rank order.
    pub ranks: Vec<RankWaitStates>,
}

/// One cause slice of a transfer's breakdown (serialized form).
#[derive(Debug, Clone, serde::Serialize)]
pub struct SliceJson {
    /// Cause label.
    pub cause: String,
    /// Attributed nanoseconds.
    pub ns: u64,
}

/// One per-transfer cause record (serialized form of
/// [`crate::attribution::CauseRecord`]).
#[derive(Debug, Clone, serde::Serialize)]
pub struct TransferJson {
    /// Transfer id, if the instrumentation saw one.
    pub id: Option<u64>,
    /// Payload bytes.
    pub bytes: u64,
    /// A-priori wire time, ns.
    pub xfer_time: u64,
    /// Upper overlap bound, ns.
    pub max_overlap: u64,
    /// Non-overlapped time the breakdown explains, ns.
    pub nonoverlap: u64,
    /// Fault-disturbed transfer.
    pub flagged: bool,
    /// Cause breakdown; sums to `nonoverlap` exactly.
    pub breakdown: Vec<SliceJson>,
}

/// One rank's full attribution inside the artifact file.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RankAttributionJson {
    /// Rank index.
    pub rank: usize,
    /// Blocking intervals the library classified.
    pub wait_intervals: usize,
    /// Per-transfer records, close order.
    pub transfers: Vec<TransferJson>,
}

/// One scope's section of the artifact file.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScopeAttributionJson {
    /// Scope label.
    pub scope: String,
    /// Per-rank attributions.
    pub ranks: Vec<RankAttributionJson>,
}

/// Instrumentation self-overhead meter: what the observability layer itself
/// cost, in deterministic units (counts and virtual-time nanoseconds — host
/// wall-clock goes to stderr, not into artifacts).
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct OverheadMeter {
    /// Traced scopes folded.
    pub scopes: usize,
    /// Rank traces folded.
    pub ranks: usize,
    /// Raw instrumentation events captured.
    pub events: u64,
    /// Per-transfer bound records derived.
    pub bound_records: u64,
    /// Wait intervals classified and recorded.
    pub wait_intervals: u64,
    /// Σ attributed non-overlap across all transfers, ns.
    pub attributed_ns: u64,
}

/// The `<id>.attribution.json` artifact: per-scope, per-rank, per-transfer
/// cause records plus the self-overhead meter.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AttributionArtifact {
    /// Harness id the artifact covers.
    pub id: String,
    /// Per-scope attributions, scope order.
    pub scopes: Vec<ScopeAttributionJson>,
    /// What the instrumentation itself cost.
    pub overhead: OverheadMeter,
}

/// One rank's contribution to [`attribution_artifact`]: its computed
/// attribution plus the raw-event count (the one overhead-meter input the
/// attribution itself does not carry).
#[derive(Debug, Clone)]
pub struct RankArtifactInput {
    /// Raw instrumentation events captured for this rank.
    pub events: u64,
    /// The rank's attribution (batch: [`crate::attribution::attribute`];
    /// stream: [`crate::attribution::attribute_parts`]).
    pub attribution: RankAttribution,
}

/// Summarize one rank's attribution into its wait-state breakdown row.
pub fn rank_wait_states(attr: &RankAttribution) -> RankWaitStates {
    let causes = WaitCause::ALL
        .iter()
        .filter_map(|c| {
            attr.totals.get(c.label()).map(|&ns| CauseTotal {
                cause: c.label().to_string(),
                ns,
            })
        })
        .collect();
    RankWaitStates {
        rank: attr.rank,
        wait_intervals: attr.wait_intervals,
        nonoverlap_ns: attr.total_nonoverlap(),
        causes,
    }
}

/// Serialize one rank's attribution records into the artifact shape.
pub fn rank_attribution_json(attr: &RankAttribution) -> RankAttributionJson {
    RankAttributionJson {
        rank: attr.rank,
        wait_intervals: attr.wait_intervals,
        transfers: attr
            .records
            .iter()
            .map(|r| TransferJson {
                id: r.id,
                bytes: r.bytes,
                xfer_time: r.xfer_time,
                max_overlap: r.max_overlap,
                nonoverlap: r.nonoverlap,
                flagged: r.flagged,
                breakdown: r
                    .breakdown
                    .iter()
                    .map(|s| SliceJson {
                        cause: s.cause.label().to_string(),
                        ns: s.ns,
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Build the attribution artifact for one harness from per-scope rank
/// inputs (scope order, ranks in rank order), accumulating the
/// self-overhead meter as it goes.
pub fn attribution_artifact(
    id: &str,
    scoped: &[(String, Vec<RankArtifactInput>)],
) -> AttributionArtifact {
    let mut overhead = OverheadMeter::default();
    let scopes = scoped
        .iter()
        .map(|(scope, ranks)| {
            overhead.scopes += 1;
            let ranks = ranks
                .iter()
                .map(|input| {
                    let attr = &input.attribution;
                    overhead.ranks += 1;
                    overhead.events += input.events;
                    overhead.bound_records += attr.records.len() as u64;
                    overhead.wait_intervals += attr.wait_intervals as u64;
                    overhead.attributed_ns += attr.total_nonoverlap();
                    rank_attribution_json(attr)
                })
                .collect();
            ScopeAttributionJson {
                scope: scope.clone(),
                ranks,
            }
        })
        .collect();
    AttributionArtifact {
        id: id.to_string(),
        scopes,
        overhead,
    }
}
