//! Convenience wrapper tying a [`simcore::Simulation`] to a [`World`].

use simcore::{ActivityLog, RankCtx, SimError, SimOpts, Simulation};

use crate::config::NetConfig;
use crate::fault::FaultEvent;
use crate::truth::TransferRecord;
use crate::world::{SharedWorld, World};

/// A simulated cluster: `nranks` processes, one per node, over one fabric.
pub struct Cluster {
    sim: Simulation,
    world: SharedWorld,
}

/// Result of a cluster run: engine outcome plus fabric ground truth.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// Virtual end time of the run.
    pub end_time: simcore::Time,
    /// Per-rank ground-truth activity logs.
    pub activity: Vec<ActivityLog>,
    /// Ground-truth records of every data transfer.
    pub transfers: Vec<TransferRecord>,
    /// Ground-truth records of every injected fault (empty without a plan).
    pub faults: Vec<FaultEvent>,
    /// Queue entries processed by the engine.
    pub events_processed: u64,
}

impl Cluster {
    /// Create a cluster of `nranks` nodes with the given fabric config.
    pub fn new(nranks: usize, cfg: NetConfig) -> Self {
        let sim = Simulation::new(nranks);
        let world = World::new_shared(cfg, sim.handle(), nranks);
        Cluster { sim, world }
    }

    /// The shared fabric (for pre-run setup or custom harnesses).
    pub fn world(&self) -> SharedWorld {
        self.world.clone()
    }

    /// The engine handle (e.g. to install a schedule oracle with
    /// [`simcore::EngineHandle::set_oracle`] before [`Cluster::run`]).
    pub fn handle(&self) -> simcore::EngineHandle {
        self.sim.handle()
    }

    /// Run `body` once per rank; returns outcome plus ground truth.
    pub fn run<F>(self, opts: SimOpts, body: F) -> Result<ClusterOutcome, SimError>
    where
        F: Fn(&mut RankCtx, &SharedWorld) + Send + Sync + 'static,
    {
        let world = self.world.clone();
        let world_for_body = self.world.clone();
        let out = self.sim.run(opts, move |ctx| body(ctx, &world_for_body))?;
        let (transfers, faults) = {
            let mut w = world.lock();
            (w.take_transfers(), w.take_fault_events())
        };
        Ok(ClusterOutcome {
            end_time: out.end_time,
            activity: out.activity,
            transfers,
            faults,
            events_processed: out.events_processed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    #[test]
    fn cluster_runs_and_collects_truth() {
        let cluster = Cluster::new(2, NetConfig::default());
        let out = cluster
            .run(SimOpts::default(), |ctx, world| {
                if ctx.rank() == 0 {
                    {
                        let mut w = world.lock();
                        let x = w.alloc_xfer_id();
                        let p = Packet::with_data(
                            0,
                            128,
                            1,
                            [0; 6],
                            bytes::Bytes::from_static(b"hello"),
                        );
                        w.post_send(0, 1, p, 0, Some(x));
                    }
                    ctx.compute(10_000);
                } else {
                    loop {
                        if world.lock().poll_rx(1).is_some() {
                            return;
                        }
                        ctx.park();
                    }
                }
            })
            .unwrap();
        assert_eq!(out.transfers.len(), 1);
        assert_eq!(out.transfers[0].bytes, 5);
        assert_eq!(out.activity.len(), 2);
    }
}
