//! Library configuration and presets mirroring the paper's three
//! communication environments.

/// Long-message (rendezvous) protocol variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RndvMode {
    /// Open MPI's default on InfiniBand: RTS carries the first fragment,
    /// the receiver ACKs with a CTS naming its buffer, and the sender
    /// pipelines the remaining fragments as RDMA Writes. Only the initial
    /// fragment can overlap application computation — the rest are scheduled
    /// from inside the wait.
    PipelinedWrite,
    /// Open MPI with `mpi_leave_pinned` / MVAPICH2's zero-copy design: the
    /// RTS advertises the pinned send buffer and the receiver pulls it with
    /// one RDMA Read, notifying the sender on completion.
    DirectRead,
}

/// Tunables of the simulated MPI library.
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Messages of at most this many bytes use the eager protocol.
    pub eager_threshold: usize,
    /// Rendezvous variant for longer messages.
    pub rndv_mode: RndvMode,
    /// Fragment size of the pipelined RDMA-Write scheme.
    pub fragment_size: usize,
    /// Cache registrations in an MRU list (`mpi_leave_pinned` behaviour):
    /// repeat transfers from the same-shaped buffers skip pinning costs.
    pub use_reg_cache: bool,
    /// Capacity of the registration cache, in entries.
    pub reg_cache_entries: usize,
    /// Reliability-layer retransmission timeout, ns. `None` derives a value
    /// from the fabric config (a few round trips at the eager threshold).
    /// Only consulted when the fabric has a non-empty fault plan.
    pub retrans_timeout: Option<simcore::Duration>,
    /// Retry budget per packet in the reliability layer. A packet that has
    /// been retransmitted this many times is abandoned, bounding
    /// retransmission livelock: a permanently lossy link eventually drains
    /// to quiescence (and surfaces as a simulated deadlock) instead of
    /// retransmitting forever.
    pub max_retries: u32,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig::open_mpi_pipelined()
    }
}

impl MpiConfig {
    /// Open MPI v1.0-like defaults: eager to 12 KiB, pipelined RDMA Writes
    /// in 128 KiB fragments, no registration cache.
    pub fn open_mpi_pipelined() -> Self {
        MpiConfig {
            eager_threshold: 12 * 1024,
            rndv_mode: RndvMode::PipelinedWrite,
            fragment_size: 128 * 1024,
            use_reg_cache: false,
            reg_cache_entries: 16,
            retrans_timeout: None,
            max_retries: 16,
        }
    }

    /// Open MPI with `mpi_leave_pinned=1`: direct RDMA with cached
    /// registrations.
    pub fn open_mpi_leave_pinned() -> Self {
        MpiConfig {
            rndv_mode: RndvMode::DirectRead,
            use_reg_cache: true,
            ..MpiConfig::open_mpi_pipelined()
        }
    }

    /// MVAPICH2 0.6-like: RDMA-Write eager into pre-registered buffers up to
    /// 12 KiB (the VBUF size of that era), zero-copy RDMA-Read rendezvous
    /// beyond.
    pub fn mvapich2() -> Self {
        MpiConfig {
            eager_threshold: 12 * 1024,
            rndv_mode: RndvMode::DirectRead,
            fragment_size: 128 * 1024,
            use_reg_cache: true,
            reg_cache_entries: 32,
            retrans_timeout: None,
            max_retries: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_mode() {
        assert_eq!(
            MpiConfig::open_mpi_pipelined().rndv_mode,
            RndvMode::PipelinedWrite
        );
        assert_eq!(
            MpiConfig::open_mpi_leave_pinned().rndv_mode,
            RndvMode::DirectRead
        );
        assert_eq!(MpiConfig::mvapich2().rndv_mode, RndvMode::DirectRead);
        assert_eq!(MpiConfig::mvapich2().eager_threshold, 12 * 1024);
    }
}
