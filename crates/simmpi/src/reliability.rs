//! Go-back-nothing reliability for the two-sided packet path: per-peer
//! sequence numbers, cumulative ACKs, gap NACKs, and virtual-time
//! retransmission with exponential backoff.
//!
//! Real RDMA fabrics are reliable in hardware, which is why the paper's
//! protocols never retransmit. This layer exists for the fault-injection
//! study: when the simulated fabric is configured lossy
//! ([`simnet::FaultPlan`]), eager and rendezvous control packets must still
//! arrive exactly once and in order or the protocol state machines wedge.
//!
//! Design constraints:
//!
//! * **Inert when the fabric is loss-free.** With `enabled == false` every
//!   packet is posted untouched (`h[5] == 0`), no timer is scheduled, and no
//!   ACK traffic exists — the wire behavior is byte-identical to the
//!   reliability-unaware library, preserving all figure outputs.
//! * **Only `post_send` packets are sequenced.** RDMA Reads/Writes (and the
//!   FIN notifications riding on them) model hardware-reliable one-sided
//!   traffic and bypass the fault injector entirely.
//! * **Driven from the polling progress engine.** Timeouts are checked each
//!   time the application enters the library; a scheduled engine wake-up
//!   un-parks a blocked rank when a deadline passes so retransmissions
//!   happen even while the rank sits in a wait.
//!
//! Retransmissions are posted with [`wr_kind::IGNORE`]: the original post's
//! local completion already fired (a dropped packet still leaves the source
//! NIC), so a second completion must not re-drive the request state machine.
//!
//! ACK/NACK control packets ride the fabric's *protected* channel
//! ([`Packet::protect`]): they are exempt from fault injection. Without
//! this, teardown cannot be made safe — a rank whose final ACK was lost
//! would be retransmitted to forever after it exits (the two-generals
//! corner). Data and protocol packets remain fully lossy.

use std::collections::{BTreeMap, HashMap};

use simcore::{Duration, EngineHandle, Time};
use simnet::{Packet, World, XferId};

use crate::proto::{self, wr_kind};

/// Cap on the exponential-backoff shift (timeout << shift).
const MAX_BACKOFF_SHIFT: u32 = 6;

/// Reliability-layer counters (per rank), exposed for harnesses and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Packets re-posted after a timeout or NACK.
    pub retransmissions: u64,
    /// Retransmission deadlines that expired (first causes of re-posts).
    pub timeouts: u64,
    /// Cumulative ACK packets sent.
    pub acks_sent: u64,
    /// Gap NACK packets sent.
    pub nacks_sent: u64,
    /// Received sequenced packets dropped as duplicates.
    pub duplicates_dropped: u64,
    /// Packets abandoned after exhausting the retry budget. A nonzero count
    /// means delivery was given up on: the protocol above may wedge, but it
    /// wedges into the engine's *detectable* quiescent deadlock instead of
    /// retransmitting forever.
    pub abandoned: u64,
}

struct Pending {
    packet: Packet,
    deadline: Time,
    /// Backoff shift applied to the next deadline (doubles per retry,
    /// capped at [`MAX_BACKOFF_SHIFT`]).
    backoff: u32,
    /// Total retransmissions of this packet (timeout- or NACK-driven);
    /// compared against the retry budget, unlike the capped `backoff`.
    retries: u32,
    /// Ground-truth transfer id of the payload, if any (re-recorded on
    /// retransmission: the wire genuinely carries the bytes again).
    xfer: Option<u64>,
}

struct TxPeer {
    next_seq: u64,
    pending: BTreeMap<u64, Pending>,
}

#[derive(Default)]
struct RxPeer {
    next_expected: u64,
    reorder: BTreeMap<u64, Packet>,
}

/// Per-rank reliability state; owned by the MPI endpoint.
pub(crate) struct Reliability {
    /// False on a loss-free fabric: every operation is pass-through.
    pub(crate) enabled: bool,
    rank: usize,
    timeout: Duration,
    /// Give up on a packet after this many retransmissions. Bounds the
    /// livelock a permanently lossy link can cause: once the budget is
    /// spent the packet is abandoned and the run quiesces into the engine's
    /// deadlock detection instead of spinning until a resource limit.
    max_retries: u32,
    ctrl_bytes: usize,
    handle: EngineHandle,
    tx: HashMap<usize, TxPeer>,
    rx: HashMap<usize, RxPeer>,
    stats: RelStats,
}

impl Reliability {
    pub(crate) fn new(
        enabled: bool,
        rank: usize,
        timeout: Duration,
        max_retries: u32,
        ctrl_bytes: usize,
        handle: EngineHandle,
    ) -> Self {
        Reliability {
            enabled,
            rank,
            timeout,
            max_retries,
            ctrl_bytes,
            handle,
            tx: HashMap::new(),
            rx: HashMap::new(),
            stats: RelStats::default(),
        }
    }

    /// Counters so far.
    pub(crate) fn stats(&self) -> RelStats {
        self.stats
    }

    /// Any packets still awaiting acknowledgment? A rank must not tear down
    /// while true: a peer may still need one of them retransmitted.
    pub(crate) fn has_pending(&self) -> bool {
        self.tx.values().any(|p| !p.pending.is_empty())
    }

    /// Number of packets still awaiting acknowledgment (diagnostics).
    pub(crate) fn pending_packets(&self) -> usize {
        self.tx.values().map(|p| p.pending.len()).sum()
    }

    /// Lowest-numbered peer with un-ACKed packets, if any (the structured
    /// wait-for edge when no data request explains a stall).
    pub(crate) fn first_pending_peer(&self) -> Option<usize> {
        self.tx
            .iter()
            .filter(|(_, p)| !p.pending.is_empty())
            .map(|(&peer, _)| peer)
            .min()
    }

    /// Transfer id of the oldest unacknowledged payload that has been
    /// retransmitted at least once. While this returns `Some`, the rank is
    /// in loss recovery: the bytes went out again and the ACK is still
    /// outstanding — the protocol state machine alone cannot explain a
    /// stall. Ordered by `(peer, seq)` so the answer is independent of
    /// `HashMap` iteration order.
    pub(crate) fn retrans_pending_xfer(&self) -> Option<u64> {
        let mut best: Option<(usize, u64, u64)> = None;
        for (&peer, tx) in &self.tx {
            for (&seq, p) in &tx.pending {
                if p.backoff == 0 {
                    continue;
                }
                let Some(x) = p.xfer else { continue };
                if best.is_none_or(|(bp, bs, _)| (peer, seq) < (bp, bs)) {
                    best = Some((peer, seq, x));
                }
            }
        }
        best.map(|(_, _, x)| x)
    }

    /// Post a two-sided packet, sequencing it when the layer is active.
    /// Self-sends bypass sequencing (the fault injector never touches them).
    pub(crate) fn post(
        &mut self,
        w: &mut World,
        dst: usize,
        mut pkt: Packet,
        user: u64,
        xfer: Option<XferId>,
    ) {
        if !self.enabled || dst == self.rank {
            w.post_send(self.rank, dst, pkt, user, xfer);
            return;
        }
        let peer = self.tx.entry(dst).or_insert_with(|| TxPeer {
            next_seq: 0,
            pending: BTreeMap::new(),
        });
        let seq = peer.next_seq;
        peer.next_seq += 1;
        pkt.h[5] = seq + 1;
        let deadline = self.handle.now() + self.timeout;
        peer.pending.insert(
            seq,
            Pending {
                packet: pkt.clone(),
                deadline,
                backoff: 0,
                retries: 0,
                xfer: xfer.map(|x| x.0),
            },
        );
        // Make sure the rank re-enters its progress loop when the deadline
        // passes, even if it is parked in a wait by then.
        let rank = self.rank;
        self.handle
            .schedule_at(deadline, move |h| h.wake_rank(rank));
        w.post_send(self.rank, dst, pkt, user, xfer);
    }

    /// Check retransmission deadlines; re-post every overdue packet with a
    /// doubled deadline. Returns the ground-truth transfer ids of payloads
    /// whose *first* retransmission just happened (for `XFER_FLAG` stamps).
    ///
    /// A packet whose retry budget is exhausted is abandoned instead of
    /// re-posted: no new deadline, no wake-up, and it stops counting as
    /// pending. Delivery of that packet has failed for good — but the run
    /// now *quiesces* (the engine's empty-queue deadlock detection fires
    /// with the wait-for diagnostics) rather than retransmitting forever.
    pub(crate) fn check_timeouts(&mut self, w: &mut World) -> Vec<u64> {
        let now = self.handle.now();
        let mut flagged = Vec::new();
        for (&dst, peer) in self.tx.iter_mut() {
            let mut abandoned: Vec<u64> = Vec::new();
            for (&seq, p) in peer.pending.iter_mut() {
                if p.deadline > now {
                    continue;
                }
                if p.retries >= self.max_retries {
                    abandoned.push(seq);
                    continue;
                }
                self.stats.timeouts += 1;
                self.stats.retransmissions += 1;
                if p.backoff == 0 {
                    if let Some(x) = p.xfer {
                        flagged.push(x);
                    }
                }
                w.post_send(
                    self.rank,
                    dst,
                    p.packet.clone(),
                    proto::pack_user(wr_kind::IGNORE, 0),
                    p.xfer.map(XferId),
                );
                p.backoff = (p.backoff + 1).min(MAX_BACKOFF_SHIFT);
                p.retries += 1;
                p.deadline = now + (self.timeout << p.backoff);
                let rank = self.rank;
                let deadline = p.deadline;
                self.handle
                    .schedule_at(deadline, move |h| h.wake_rank(rank));
            }
            for seq in abandoned {
                peer.pending.remove(&seq);
                self.stats.abandoned += 1;
            }
        }
        flagged
    }

    /// Handle a cumulative ACK from `src`: everything below `next_expected`
    /// has been delivered there.
    pub(crate) fn on_ack(&mut self, src: usize, next_expected: u64) {
        if let Some(peer) = self.tx.get_mut(&src) {
            peer.pending.retain(|&seq, _| seq >= next_expected);
        }
    }

    /// Handle a gap NACK from `src`: retransmit `missing` immediately if it
    /// is still pending. Returns the transfer id to flag, if this was the
    /// packet's first retransmission.
    pub(crate) fn on_nack(&mut self, w: &mut World, src: usize, missing: u64) -> Option<u64> {
        let peer = self.tx.get_mut(&src)?;
        if peer.pending.get(&missing)?.retries >= self.max_retries {
            // Retry budget spent: abandon rather than resend (see
            // `check_timeouts`).
            peer.pending.remove(&missing);
            self.stats.abandoned += 1;
            return None;
        }
        let p = peer.pending.get_mut(&missing)?;
        self.stats.retransmissions += 1;
        let flag = (p.backoff == 0).then_some(p.xfer).flatten();
        w.post_send(
            self.rank,
            src,
            p.packet.clone(),
            proto::pack_user(wr_kind::IGNORE, 0),
            p.xfer.map(XferId),
        );
        p.backoff = (p.backoff + 1).min(MAX_BACKOFF_SHIFT);
        p.retries += 1;
        p.deadline = self.handle.now() + (self.timeout << p.backoff);
        let rank = self.rank;
        let deadline = p.deadline;
        self.handle
            .schedule_at(deadline, move |h| h.wake_rank(rank));
        flag
    }

    /// Filter an incoming sequenced packet (`h[5] != 0`). Returns the
    /// packets now deliverable to the protocol layer, in sequence order —
    /// empty for duplicates and out-of-order arrivals (buffered).
    pub(crate) fn on_sequenced(&mut self, w: &mut World, p: Packet) -> Vec<Packet> {
        debug_assert!(p.h[5] != 0, "unsequenced packet in reliability filter");
        let seq = p.h[5] - 1;
        let src = p.src;
        let peer = self.rx.entry(src).or_default();
        if seq < peer.next_expected {
            // Duplicate (fabric duplication or spurious retransmit): drop,
            // but re-ACK so the sender stops resending it.
            self.stats.duplicates_dropped += 1;
            let next_expected = peer.next_expected;
            self.send_ack(w, src, next_expected);
            return Vec::new();
        }
        if seq > peer.next_expected {
            // Gap: buffer and ask for the missing packet right away instead
            // of waiting out the sender's timeout.
            let first_missing = peer.next_expected;
            if peer.reorder.insert(seq, p).is_some() {
                self.stats.duplicates_dropped += 1;
            }
            self.send_nack(w, src, first_missing);
            return Vec::new();
        }
        let mut out = vec![p];
        peer.next_expected += 1;
        while let Some(q) = peer.reorder.remove(&peer.next_expected) {
            out.push(q);
            peer.next_expected += 1;
        }
        let next_expected = peer.next_expected;
        self.send_ack(w, src, next_expected);
        out
    }

    fn send_ack(&mut self, w: &mut World, dst: usize, next_expected: u64) {
        self.stats.acks_sent += 1;
        let ack = Packet::control(
            self.rank,
            self.ctrl_bytes,
            proto::PT_ACK,
            [next_expected, 0, 0, 0, 0, 0],
        )
        .protect();
        w.post_send(
            self.rank,
            dst,
            ack,
            proto::pack_user(wr_kind::IGNORE, 0),
            None,
        );
    }

    fn send_nack(&mut self, w: &mut World, dst: usize, missing: u64) {
        self.stats.nacks_sent += 1;
        let nack = Packet::control(
            self.rank,
            self.ctrl_bytes,
            proto::PT_NACK,
            [missing, 0, 0, 0, 0, 0],
        )
        .protect();
        w.post_send(
            self.rank,
            dst,
            nack,
            proto::pack_user(wr_kind::IGNORE, 0),
            None,
        );
    }
}
