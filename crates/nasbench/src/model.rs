//! The analytic computation model.
//!
//! Compute phases are modeled as flop counts executed at a sustained rate
//! representative of the paper's 2.4 GHz P4 Xeon nodes (~1 GFLOP/s sustained
//! for these memory-bound kernels). The per-point flop constants below are
//! order-of-magnitude estimates from the NPB kernel structure; what matters
//! for the overlap study is the *ratio* of compute-phase length to transfer
//! time, not absolute accuracy.

/// Sustained floating-point rate, flops per nanosecond.
pub const FLOPS_PER_NS: f64 = 1.0;

/// Convert a flop count to virtual nanoseconds of computation.
#[inline]
pub fn flops_ns(flops: f64) -> u64 {
    (flops / FLOPS_PER_NS).max(1.0) as u64
}

/// SP: right-hand-side evaluation, flops per grid point per iteration.
pub const SP_RHS_FLOPS: f64 = 60.0;
/// SP: lhs factorization inside the overlap section, flops per cell point
/// per stage.
pub const SP_LHS_FLOPS: f64 = 30.0;
/// SP: cell forward/back substitution, flops per cell point per stage.
pub const SP_SOLVE_FLOPS: f64 = 25.0;
/// BT: block-tridiagonal work is ~3x SP's scalar-pentadiagonal work.
pub const BT_WORK_SCALE: f64 = 3.0;
/// CG: flops per matrix nonzero per matvec.
pub const CG_MATVEC_FLOPS: f64 = 2.0;
/// CG: flops per vector element for the axpy/dot tail of each inner step.
pub const CG_VECTOR_FLOPS: f64 = 6.0;
/// LU: SSOR work per grid point per sweep plane.
pub const LU_PLANE_FLOPS: f64 = 150.0;
/// LU: rhs evaluation per grid point per iteration.
pub const LU_RHS_FLOPS: f64 = 90.0;
/// FT: per-point cost of one 1-D FFT pass (≈ 5 log2 N per point across the
/// three passes, folded into one constant per transpose step).
pub const FT_FFT_FLOPS_PER_POINT: f64 = 45.0;
/// FT: evolve/checksum per point per iteration.
pub const FT_EVOLVE_FLOPS: f64 = 8.0;
/// MG: smoother/residual work per grid point per level visit.
pub const MG_POINT_FLOPS: f64 = 12.0;
/// EP: flops per random pair.
pub const EP_PAIR_FLOPS: f64 = 30.0;
/// IS: key ranking work per key per iteration.
pub const IS_KEY_FLOPS: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_convert_to_time() {
        assert_eq!(flops_ns(1000.0), 1000);
        assert_eq!(flops_ns(0.0), 1); // never a zero-length phase
    }
}
