//! Critical-path artifacts for `repro --critical-path <dir>`.
//!
//! Folds captured [`TraceBundle`]s through `overlap-core`'s
//! [attribution] layer into the three artifacts
//! the CLI exports per harness:
//!
//! * a per-rank **wait-state breakdown** ([`ScopeWaitStates`]) merged into
//!   the `--json` run report,
//! * a **collapsed-stack** file (`<id>.critpath.folded`, one
//!   `frame;frame;... weight` line per dominant wait chain — feed to any
//!   flamegraph renderer),
//! * a structured **attribution artifact** (`<id>.attribution.json`) with
//!   the per-transfer cause records and the instrumentation self-overhead
//!   meter.
//!
//! The artifact *types* and construction live in
//! [`overlap_core::artifact`], shared with the streaming server
//! (`overlapd`) so batch and stream emit byte-identical files; this module
//! re-exports them and adapts captured [`TraceBundle`]s into the shared
//! builders.
//!
//! Everything here is a pure function of the captured traces (virtual time
//! only), so all artifacts are byte-identical across runs and `--jobs`
//! values. Host wall-clock — the one nondeterministic quantity — is
//! reported by the CLI on stderr only.

use overlap_core::artifact::{self, RankArtifactInput};
use overlap_core::attribution;
use overlap_core::trace::TraceBundle;

pub use overlap_core::artifact::{
    AttributionArtifact, CauseTotal, OverheadMeter, RankAttributionJson, RankWaitStates,
    ScopeAttributionJson, ScopeWaitStates, SliceJson, TransferJson,
};

/// Summarize one scope's bundle into the per-rank wait-state breakdown for
/// the `--json` report.
pub fn wait_states(scope: &str, bundle: &TraceBundle) -> ScopeWaitStates {
    ScopeWaitStates {
        scope: scope.to_string(),
        ranks: bundle
            .ranks
            .iter()
            .map(|tr| artifact::rank_wait_states(&attribution::attribute(tr)))
            .collect(),
    }
}

/// Build the attribution artifact for one harness from its scope bundles
/// (scope order), accumulating the self-overhead meter as it goes.
pub fn attribution_artifact(id: &str, scoped: &[(String, &TraceBundle)]) -> AttributionArtifact {
    let inputs: Vec<(String, Vec<RankArtifactInput>)> = scoped
        .iter()
        .map(|(scope, bundle)| {
            (
                scope.clone(),
                bundle
                    .ranks
                    .iter()
                    .map(|tr| RankArtifactInput {
                        events: tr.events.len() as u64,
                        attribution: attribution::attribute(tr),
                    })
                    .collect(),
            )
        })
        .collect();
    artifact::attribution_artifact(id, &inputs)
}

/// Collapsed-stack (flamegraph) text for one harness: each scope's dominant
/// wait chains concatenated in scope order. Lines are
/// `scope;rank N;<call>;<cause> <ns>`.
pub fn collapsed(scoped: &[(String, &TraceBundle)]) -> String {
    let mut out = String::new();
    for (_, bundle) in scoped {
        out.push_str(&attribution::collapsed_stack(bundle));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap_core::attribution::{WaitCause, WaitInterval};
    use overlap_core::bounds::XferCase;
    use overlap_core::trace::{BoundRecord, RankTrace};
    use overlap_core::{Event, EventKind};

    fn bundle() -> TraceBundle {
        TraceBundle {
            scope: "t/a".into(),
            ranks: vec![RankTrace {
                rank: 0,
                events: vec![
                    Event::new(0, EventKind::CallEnter { name: "MPI_Recv" }),
                    Event::new(500, EventKind::XferEnd { id: 1, bytes: 256 }),
                    Event::new(500, EventKind::CallExit),
                ],
                bounds: vec![BoundRecord {
                    id: Some(1),
                    bytes: 256,
                    begin_t: Some(0),
                    end_t: 500,
                    xfer_time: 300,
                    min: 0,
                    max: 0,
                    case: XferCase::SameCall,
                    flagged: false,
                    clamped: false,
                }],
                waits: vec![WaitInterval {
                    start: 100,
                    end: 400,
                    cause: WaitCause::LateSender,
                    xfer: Some(1),
                }],
            }],
            extras: vec![],
        }
    }

    #[test]
    fn wait_states_reconcile_per_rank() {
        let b = bundle();
        let ws = wait_states("t/a", &b);
        assert_eq!(ws.ranks.len(), 1);
        let r = &ws.ranks[0];
        assert_eq!(r.nonoverlap_ns, 300);
        let total: u64 = r.causes.iter().map(|c| c.ns).sum();
        assert_eq!(total, r.nonoverlap_ns);
        assert!(r.causes.iter().any(|c| c.cause == "late_sender"));
    }

    #[test]
    fn artifact_carries_overhead_meter() {
        let b = bundle();
        let scoped = vec![("t/a".to_string(), &b)];
        let art = attribution_artifact("t", &scoped);
        assert_eq!(art.overhead.scopes, 1);
        assert_eq!(art.overhead.events, 3);
        assert_eq!(art.overhead.bound_records, 1);
        assert_eq!(art.overhead.wait_intervals, 1);
        assert_eq!(art.overhead.attributed_ns, 300);
        assert_eq!(art.scopes[0].ranks[0].transfers[0].nonoverlap, 300);
    }

    #[test]
    fn collapsed_concatenates_scopes_in_order() {
        let b = bundle();
        let scoped = vec![("t/a".to_string(), &b)];
        let s = collapsed(&scoped);
        assert_eq!(s, "t/a;rank 0;MPI_Recv;late_sender 300\n");
    }
}
