//! Smoke tests for the figure/ablation harnesses themselves: every entry is
//! invokable, well-formed, and the cheap ones keep their paper shapes.

use bench::micro::{overlap_sweep, Pairing};
use bench::Series;
use simmpi::MpiConfig;

fn assert_well_formed(s: &Series) {
    assert!(!s.columns.is_empty(), "{}: no columns", s.id);
    assert!(!s.rows.is_empty(), "{}: no rows", s.id);
    for row in &s.rows {
        assert_eq!(row.len(), s.columns.len(), "{}: ragged row", s.id);
    }
    let text = s.render();
    assert!(text.contains(s.id));
}

#[test]
fn harness_registry_ids_are_unique_and_match() {
    let mut ids: Vec<&str> = bench::figures::all()
        .iter()
        .map(|h| h.id)
        .chain(bench::ablations::all().iter().map(|h| h.id))
        .collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate harness ids");
    assert_eq!(
        bench::figures::all().len(),
        18,
        "one harness per paper figure 3..20"
    );
    for h in bench::figures::all().iter().chain(&bench::ablations::all()) {
        assert!(h.ranks >= 2, "{}: implausible rank count", h.id);
    }
}

#[test]
fn micro_sweep_smoke_preserves_fig3_shape() {
    let pts = overlap_sweep(
        MpiConfig::open_mpi_pipelined(),
        10 << 10,
        20,
        &[0, 20_000],
        Pairing::IsendIrecv,
    );
    assert_eq!(pts.len(), 2);
    assert!(pts[1].snd_min > pts[0].snd_min);
    assert_eq!(pts[0].rcv_min, 0.0);
    assert_eq!(pts[1].rcv_min, 0.0);
}

#[test]
fn cheap_harnesses_produce_well_formed_series() {
    // Run the fastest harnesses end to end (the full set runs under
    // `cargo bench --bench figures`).
    for f in [
        bench::ablations::ablation_queue_capacity as bench::HarnessFn,
        bench::ablations::ablation_eager_threshold,
    ] {
        assert_well_formed(&f());
    }
}

#[test]
fn series_json_roundtrips_to_disk() {
    let s = bench::ablations::ablation_queue_capacity();
    let dir = std::env::temp_dir().join("overlap_suite_series");
    s.save_json(&dir);
    let data = std::fs::read_to_string(dir.join(format!("{}.json", s.id))).unwrap();
    let v: serde_json::Value = serde_json::from_str(&data).unwrap();
    assert_eq!(v["id"], s.id);
    assert_eq!(v["rows"].as_array().unwrap().len(), s.rows.len());
}
