//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the `Bytes` API this workspace uses: a cheaply
//! cloneable, sliceable, immutable byte buffer backed by `Arc<[u8]>`.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Buffer holding a copy of a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }

    /// Buffer holding a copy of `s`.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            data: Arc::from(s.to_vec()),
            start: 0,
            end: s.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range 0..{len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// View as a plain byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Self {
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_clone_share_contents() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let c = s.clone();
        assert_eq!(c, s);
        assert_eq!(b.slice(..).len(), 5);
    }

    #[test]
    fn static_and_empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"hello")[..], b"hello");
    }
}
