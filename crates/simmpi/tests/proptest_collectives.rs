//! Property tests over random *sequences* of collectives (catches tag-scope
//! collisions and ordering bugs that single-op tests cannot).

use proptest::prelude::*;

use overlap_core::RecorderOpts;
use simmpi::{run_mpi, MpiConfig, ReduceOp};
use simnet::NetConfig;

#[derive(Debug, Clone, Copy)]
enum Op {
    Barrier,
    Bcast { root: usize, len: usize },
    Allreduce { len: usize },
    Allgather { len: usize },
    Alltoall { len: usize },
    Scan,
    ReduceScatter,
    RowAllreduce,
}

fn arb_op(nranks: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Barrier),
        (0..nranks, 1usize..5000).prop_map(|(root, len)| Op::Bcast { root, len }),
        (1usize..64).prop_map(|len| Op::Allreduce { len }),
        (1usize..2000).prop_map(|len| Op::Allgather { len }),
        (1usize..3000).prop_map(|len| Op::Alltoall { len }),
        Just(Op::Scan),
        Just(Op::ReduceScatter),
        Just(Op::RowAllreduce),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_collective_sequences_are_correct(
        ops in prop::collection::vec(arb_op(4), 1..10),
    ) {
        let nranks = 4;
        let ops_in = ops.clone();
        run_mpi(
            nranks,
            NetConfig::default(),
            MpiConfig::default(),
            RecorderOpts::default(),
            move |mpi| {
                let me = mpi.rank();
                let n = mpi.nranks();
                // Sub-communicator reused across the sequence.
                let row = mpi.comm_split((me / 2) as u64, me as u64);
                for (i, op) in ops_in.iter().enumerate() {
                    match *op {
                        Op::Barrier => mpi.barrier(),
                        Op::Bcast { root, len } => {
                            let mut data = if me == root {
                                vec![(root + i) as u8; len]
                            } else {
                                Vec::new()
                            };
                            mpi.bcast(root, &mut data);
                            assert_eq!(data, vec![(root + i) as u8; len], "bcast {i}");
                        }
                        Op::Allreduce { len } => {
                            let mine = vec![me as f64; len];
                            let out = mpi.allreduce(&mine, ReduceOp::Sum);
                            let expect = (0..n).map(|r| r as f64).sum::<f64>();
                            assert!(out.iter().all(|&v| v == expect), "allreduce {i}");
                        }
                        Op::Allgather { len } => {
                            let all = mpi.allgather(&vec![me as u8; len]);
                            for (r, b) in all.iter().enumerate() {
                                assert_eq!(b, &vec![r as u8; len], "allgather {i}");
                            }
                        }
                        Op::Alltoall { len } => {
                            let blocks: Vec<Vec<u8>> =
                                (0..n).map(|d| vec![(me * n + d) as u8; len]).collect();
                            let got = mpi.alltoall(&blocks);
                            for (src, b) in got.iter().enumerate() {
                                assert_eq!(b, &vec![(src * n + me) as u8; len], "alltoall {i}");
                            }
                        }
                        Op::Scan => {
                            let out = mpi.scan(&[1.0], ReduceOp::Sum);
                            assert_eq!(out, vec![(me + 1) as f64], "scan {i}");
                        }
                        Op::ReduceScatter => {
                            let data: Vec<f64> = (0..n).map(|j| (j + me) as f64).collect();
                            let mine = mpi.reduce_scatter(&data, ReduceOp::Sum);
                            let expect: f64 = (0..n).map(|r| (me + r) as f64).sum();
                            assert_eq!(mine, vec![expect], "reduce_scatter {i}");
                        }
                        Op::RowAllreduce => {
                            let out = mpi.allreduce_comm(&row, &[1.0], ReduceOp::Sum);
                            assert_eq!(out, vec![row.size() as f64], "row allreduce {i}");
                        }
                    }
                }
            },
        )
        .expect("run failed");
    }
}
