//! The `--progress` flag's CLI contract: unknown models exit 2 with a
//! one-line message (mirroring `--topology`), the flag composes with
//! `--topology` and `--jobs`, and stdout under an overridden model stays
//! byte-identical across `--jobs` values.

use std::process::Command;

use simmpi::ProgressModel;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

#[test]
fn unknown_progress_model_exits_2_with_one_line_message() {
    for args in [
        &["--progress", "bogus", "fig03"][..],
        &["--progress=async-rank:interval=0", "fig03"][..],
        &["--progress"][..],
    ] {
        let out = repro(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} should exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert_eq!(
            stderr.lines().count(),
            1,
            "{args:?} should print exactly one line: {stderr:?}"
        );
        assert!(
            stderr.starts_with("repro: "),
            "{args:?} message missing the repro prefix: {stderr:?}"
        );
        assert!(
            out.stdout.is_empty(),
            "{args:?} should produce no stdout on a usage error"
        );
    }
}

#[test]
fn progress_flag_parses_and_composes_with_topology_and_jobs() {
    let figures = bench::figures::all();
    let ablations = bench::ablations::all();
    let args: Vec<String> = [
        "--progress",
        "async-rank:interval=2500",
        "--topology",
        "fat-tree:k=8",
        "--jobs",
        "2",
        "ablation-eager",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let cli = bench::runner::parse_cli(&args, &figures, &ablations).unwrap();
    assert_eq!(
        cli.progress,
        Some(ProgressModel::AsyncRank {
            poll_interval: 2_500
        })
    );
    assert_eq!(cli.topology, Some(simnet::TopologySpec::FatTree { k: 8 }));
    assert_eq!(cli.jobs, 2);

    let cli =
        bench::runner::parse_cli(&["--progress=hw-tag".to_string()], &figures, &ablations).unwrap();
    assert_eq!(cli.progress, Some(ProgressModel::HwTag));

    let cli = bench::runner::parse_cli(&["fig04".to_string()], &figures, &ablations).unwrap();
    assert_eq!(cli.progress, None, "no flag, no override");

    let err = bench::runner::parse_cli(&["--progress=frob".to_string()], &figures, &ablations)
        .unwrap_err();
    assert!(err.contains("frob"), "error must name the model: {err}");
}

/// One binary invocation per jobs value, overridden model, two harnesses so
/// the worker pool actually interleaves: stdout must not change.
#[test]
fn overridden_model_stdout_is_byte_identical_across_jobs() {
    let run = |jobs: &str| {
        let out = repro(&[
            "--progress",
            "async-rank",
            "--jobs",
            jobs,
            "ablation-eager",
            "ablation-queue",
        ]);
        assert!(out.status.success(), "repro failed: {:?}", out.status);
        String::from_utf8(out.stdout).unwrap()
    };
    let serial = run("1");
    let parallel = run("4");
    assert_eq!(serial, parallel, "worker count leaked into the output");
    assert!(serial.contains("== ablation-eager"));
    assert!(serial.contains("== ablation-queue"));
}

/// The override must actually reach the harnesses: the same selection under
/// `--progress async-rank` differs from the default polling output (the
/// progress fiber steals compute cycles, shifting the reported numbers).
#[test]
fn progress_override_changes_harness_output() {
    let base = repro(&["ablation-eager"]);
    assert!(base.status.success());
    let async_rank = repro(&["--progress", "async-rank", "ablation-eager"]);
    assert!(async_rank.status.success());
    assert_ne!(
        String::from_utf8(base.stdout).unwrap(),
        String::from_utf8(async_rank.stdout).unwrap(),
        "--progress async-rank produced byte-identical output to polling"
    );
}
