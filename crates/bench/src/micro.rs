//! The paper's Sec. 3.2 microbenchmark: two processes exchange a message
//! with a chosen pairing of point-to-point calls while increasing
//! computation is inserted between the initiating and waiting non-blocking
//! calls. Reports min/max overlap percentage and average wait time for each
//! side.

use overlap_core::RecorderOpts;
use simmpi::{run_mpi, MpiConfig, Src, TagSel};
use simnet::NetConfig;

/// Which call combination the two processes use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pairing {
    /// Sender `MPI_Isend`(+compute+Wait); receiver blocking `MPI_Recv`.
    IsendRecv,
    /// Sender blocking `MPI_Send`; receiver `MPI_Irecv`(+compute+Wait).
    SendIrecv,
    /// Both sides non-blocking.
    IsendIrecv,
}

/// One row of a microbenchmark sweep.
#[derive(Debug, Clone)]
pub struct MicroPoint {
    /// Inserted computation, ns.
    pub compute_ns: u64,
    /// Sender min overlap, %.
    pub snd_min: f64,
    /// Sender max overlap, %.
    pub snd_max: f64,
    /// Sender average `MPI_Wait` time, ns (0 if it never waits).
    pub snd_wait_ns: f64,
    /// Receiver min overlap, %.
    pub rcv_min: f64,
    /// Receiver max overlap, %.
    pub rcv_max: f64,
    /// Receiver average `MPI_Wait` time, ns.
    pub rcv_wait_ns: f64,
}

/// Run the overlap microbenchmark: `reps` transfers of `bytes` for each
/// inserted-computation value. Sweep points are independent seeded
/// simulations, so they run on the shared `--jobs` worker budget; results
/// come back in input order regardless of scheduling.
pub fn overlap_sweep(
    cfg: MpiConfig,
    bytes: usize,
    reps: usize,
    computes_ns: &[u64],
    pairing: Pairing,
) -> Vec<MicroPoint> {
    overlap_sweep_scoped("", cfg, bytes, reps, computes_ns, pairing)
}

/// [`overlap_sweep`], registering each point's traces under
/// `"<scope>/c<ns>"` when [`crate::tracecap`] is armed. An empty `scope`
/// disables capture for this sweep.
pub fn overlap_sweep_scoped(
    scope: &str,
    cfg: MpiConfig,
    bytes: usize,
    reps: usize,
    computes_ns: &[u64],
    pairing: Pairing,
) -> Vec<MicroPoint> {
    crate::runner::par_map(computes_ns, |&c| {
        let label =
            (!scope.is_empty() && crate::tracecap::enabled()).then(|| format!("{scope}/c{c}"));
        run_point(label, cfg.clone(), bytes, reps, c, pairing)
    })
}

fn run_point(
    scope: Option<String>,
    cfg: MpiConfig,
    bytes: usize,
    reps: usize,
    compute_ns: u64,
    pairing: Pairing,
) -> MicroPoint {
    let rec = RecorderOpts {
        trace: scope.is_some(),
        ..Default::default()
    };
    let out = run_mpi(
        2,
        crate::topo::apply(NetConfig::default()),
        crate::progress::apply(cfg),
        rec,
        move |mpi| {
            let msg = vec![0x5Au8; bytes];
            for i in 0..reps as u64 {
                if mpi.rank() == 0 {
                    match pairing {
                        Pairing::IsendRecv | Pairing::IsendIrecv => {
                            let r = mpi.isend(1, i, &msg);
                            if compute_ns > 0 {
                                mpi.compute(compute_ns);
                            }
                            mpi.wait(r);
                        }
                        Pairing::SendIrecv => {
                            mpi.send(1, i, &msg);
                            if compute_ns > 0 {
                                mpi.compute(compute_ns);
                            }
                        }
                    }
                } else {
                    match pairing {
                        Pairing::SendIrecv | Pairing::IsendIrecv => {
                            let r = mpi.irecv(Src::Rank(0), TagSel::Is(i));
                            if compute_ns > 0 {
                                mpi.compute(compute_ns);
                            }
                            mpi.wait(r);
                        }
                        Pairing::IsendRecv => {
                            mpi.recv(Src::Rank(0), TagSel::Is(i));
                            if compute_ns > 0 {
                                mpi.compute(compute_ns);
                            }
                        }
                    }
                }
                // Keep the iterations in lock-step so the pattern reflects a
                // steady state rather than unbounded sender run-ahead.
                mpi.barrier();
            }
        },
    )
    .unwrap_or_else(|e| panic!("{}", e.one_line()));
    if let Some(s) = scope {
        crate::tracecap::record(s, out.traces.clone(), &out.faults);
    }

    let wait_avg = |rank: usize| {
        out.reports[rank]
            .calls
            .get("MPI_Wait")
            .map(|c| c.avg())
            .unwrap_or(0.0)
    };
    MicroPoint {
        compute_ns,
        snd_min: out.reports[0].total.min_pct(),
        snd_max: out.reports[0].total.max_pct(),
        snd_wait_ns: wait_avg(0),
        rcv_min: out.reports[1].total.min_pct(),
        rcv_max: out.reports[1].total.max_pct(),
        rcv_wait_ns: wait_avg(1),
    }
}
