//! Harness for ARMCI programs on the simulated cluster.

use std::sync::Arc;

use overlap_core::{OverlapReport, RecorderOpts, XferTimeTable};
use parking_lot::Mutex;
use simcore::{ActivityLog, SimError, SimOpts, Time};
use simnet::{Cluster, NetConfig, TransferRecord};

use crate::armci::Armci;

/// Result of an ARMCI run.
#[derive(Debug)]
pub struct ArmciRunOutcome {
    /// Per-rank overlap reports.
    pub reports: Vec<OverlapReport>,
    /// Ground-truth transfer records.
    pub transfers: Vec<TransferRecord>,
    /// Ground-truth activity logs.
    pub activity: Vec<ActivityLog>,
    /// Per-rank time-resolved traces (empty unless `RecorderOpts::trace`
    /// was set; ordered by rank when present).
    pub traces: Vec<overlap_core::trace::RankTrace>,
    /// Virtual end time.
    pub end_time: Time,
}

impl ArmciRunOutcome {
    /// Ground-truth overlap for `rank`, restricted to transfers **this rank
    /// initiated**. One-sided communication leaves the target host passive —
    /// its library sees no events for incoming puts/gets, so the per-process
    /// report (and therefore the comparable truth) covers only issued
    /// operations. Puts are initiated by the data source, gets by the data
    /// destination.
    pub fn true_overlap(&self, rank: usize) -> u64 {
        self.transfers
            .iter()
            .filter(|t| initiated_by(t, rank))
            .map(|t| t.true_overlap(&self.activity[rank]))
            .sum()
    }

    /// Congestion slack for the initiated transfers of `rank` (see
    /// `simmpi::MpiRunOutcome::congestion_excess`).
    pub fn congestion_excess(&self, rank: usize, table: &XferTimeTable) -> u64 {
        self.transfers
            .iter()
            .filter(|t| initiated_by(t, rank))
            .map(|t| t.duration().saturating_sub(table.lookup(t.bytes as u64)))
            .sum()
    }
}

fn initiated_by(t: &TransferRecord, rank: usize) -> bool {
    match t.kind {
        simnet::TransferKind::Send | simnet::TransferKind::RdmaWrite => t.src == rank,
        simnet::TransferKind::RdmaRead => t.dst == rank,
    }
}

/// Run `body` as an ARMCI program on `nranks` simulated nodes.
pub fn run_armci<F>(
    nranks: usize,
    net: NetConfig,
    rec_opts: RecorderOpts,
    body: F,
) -> Result<ArmciRunOutcome, SimError>
where
    F: Fn(&mut Armci) + Send + Sync + 'static,
{
    let table = simmpi::default_xfer_table(&net);
    run_armci_with(nranks, net, rec_opts, table, SimOpts::default(), body)
}

/// Full-control variant of [`run_armci`].
pub fn run_armci_with<F>(
    nranks: usize,
    net: NetConfig,
    rec_opts: RecorderOpts,
    table: XferTimeTable,
    opts: SimOpts,
    body: F,
) -> Result<ArmciRunOutcome, SimError>
where
    F: Fn(&mut Armci) + Send + Sync + 'static,
{
    let cluster = Cluster::new(nranks, net);
    type PerRank = Vec<Option<(OverlapReport, Option<overlap_core::trace::RankTrace>)>>;
    let collected: Arc<Mutex<PerRank>> = Arc::new(Mutex::new((0..nranks).map(|_| None).collect()));
    let collected_in = Arc::clone(&collected);
    let out = cluster.run(opts, move |ctx, world| {
        let rank = ctx.rank();
        let mut armci = Armci::init(ctx, world.clone(), table.clone(), rec_opts.clone());
        body(&mut armci);
        collected_in.lock()[rank] = Some(armci.finalize_traced());
    })?;
    let mut reports = Vec::with_capacity(nranks);
    let mut traces = Vec::new();
    for slot in Arc::try_unwrap(collected)
        .expect("report collector uniquely owned after run")
        .into_inner()
    {
        let (report, trace) = slot.expect("every rank produced a report");
        reports.push(report);
        traces.extend(trace);
    }
    Ok(ArmciRunOutcome {
        reports,
        transfers: out.transfers,
        activity: out.activity,
        traces,
        end_time: out.end_time,
    })
}
