//! One-sided software pipeline over ARMCI.
//!
//! Rank 0 produces blocks and pushes them into rank 1's segment with
//! non-blocking puts, double-buffered so production of block `k+1` overlaps
//! the transfer of block `k` — the latency-hiding idiom the ARMCI part of
//! the paper (Sec. 4.4) quantifies. Compare the reported bounds of the
//! pipelined version with the serial (blocking put) version.
//!
//! ```text
//! cargo run --example armci_pipeline
//! ```

use overlap_suite::prelude::*;

const BLOCK: usize = 256 << 10;
const BLOCKS: usize = 16;
const PRODUCE_NS: u64 = 400_000; // per-block production cost

fn main() {
    for (name, pipelined) in [("blocking puts", false), ("pipelined nb_puts", true)] {
        let out = run_armci(2, NetConfig::default(), RecorderOpts::default(), move |a| {
            let mem = a.malloc(BLOCK * BLOCKS);
            a.barrier();
            if a.rank() == 0 {
                let mut prev: Option<simarmci::NbHandle> = None;
                for k in 0..BLOCKS {
                    // "Produce" the block.
                    a.compute(PRODUCE_NS);
                    let data = vec![k as u8 + 1; BLOCK];
                    if pipelined {
                        // Ship it asynchronously; reap the previous one.
                        if let Some(h) = prev.take() {
                            a.wait(h);
                        }
                        prev = Some(a.nb_put(&mem, 1, k * BLOCK, &data));
                    } else {
                        a.put(&mem, 1, k * BLOCK, &data);
                    }
                }
                if let Some(h) = prev {
                    a.wait(h);
                }
                a.barrier();
            } else {
                a.barrier();
                // Consumer validates every block landed intact.
                for k in 0..BLOCKS {
                    let got = a.local_read(&mem, k * BLOCK, BLOCK);
                    assert!(got.iter().all(|&b| b == k as u8 + 1), "block {k} corrupt");
                }
            }
        })
        .expect("simulation failed");

        let r = &out.reports[0];
        println!(
            "{name:>18}: min {:5.1}%  max {:5.1}%  producer elapsed {:6.2} ms",
            r.total.min_pct(),
            r.total.max_pct(),
            r.elapsed as f64 / 1e6,
        );
    }
    println!(
        "\nThe pipelined producer proves (min bound) that its transfers ran\n\
         under block production; the blocking producer cannot overlap at all\n\
         (case 1: initiation and completion inside one ARMCI_Put)."
    );
}
