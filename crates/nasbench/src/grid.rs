//! Process-grid decompositions used by the NPB kernels.

/// Side of the square process grid required by BT/SP. Panics if `np` is not
/// a perfect square (matching NPB's requirement).
pub fn square_side(np: usize) -> usize {
    let q = (np as f64).sqrt().round() as usize;
    assert_eq!(q * q, np, "BT/SP require a square process count, got {np}");
    q
}

/// Near-square 2-D factorization for power-of-two counts (CG/LU style):
/// returns `(rows, cols)` with `cols == rows` or `cols == 2 * rows`.
pub fn grid2(np: usize) -> (usize, usize) {
    assert!(
        np.is_power_of_two(),
        "CG/LU require a power-of-two count, got {np}"
    );
    let log = np.trailing_zeros();
    let rows = 1usize << (log / 2);
    (rows, np / rows)
}

/// 3-D factorization for power-of-two counts (MG style): splits factors of
/// two across dimensions round-robin; returns `(px, py, pz)`.
pub fn grid3(np: usize) -> (usize, usize, usize) {
    assert!(
        np.is_power_of_two(),
        "MG requires a power-of-two count, got {np}"
    );
    let mut dims = [1usize; 3];
    let mut remaining = np;
    let mut axis = 0;
    while remaining > 1 {
        dims[axis] *= 2;
        remaining /= 2;
        axis = (axis + 1) % 3;
    }
    (dims[0], dims[1], dims[2])
}

/// Coordinates of `rank` in a `(px, py, pz)` grid, x fastest.
pub fn coords3(rank: usize, dims: (usize, usize, usize)) -> (usize, usize, usize) {
    let (px, py, _) = dims;
    (rank % px, (rank / px) % py, rank / (px * py))
}

/// Rank of `(x, y, z)` in a `(px, py, pz)` grid, x fastest.
pub fn rank3(c: (usize, usize, usize), dims: (usize, usize, usize)) -> usize {
    let (px, py, _) = dims;
    c.0 + c.1 * px + c.2 * px * py
}

/// Neighbor of `rank` along `axis` (0..3) in direction `dir` (±1), with
/// periodic wrap.
pub fn neighbor3(rank: usize, dims: (usize, usize, usize), axis: usize, dir: isize) -> usize {
    let mut c = [0usize; 3];
    let (cx, cy, cz) = coords3(rank, dims);
    c[0] = cx;
    c[1] = cy;
    c[2] = cz;
    let n = [dims.0, dims.1, dims.2][axis];
    c[axis] = ((c[axis] as isize + dir).rem_euclid(n as isize)) as usize;
    rank3((c[0], c[1], c[2]), dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_sides() {
        assert_eq!(square_side(4), 2);
        assert_eq!(square_side(9), 3);
        assert_eq!(square_side(16), 4);
    }

    #[test]
    #[should_panic(expected = "square process count")]
    fn non_square_panics() {
        square_side(6);
    }

    #[test]
    fn grid2_shapes() {
        assert_eq!(grid2(4), (2, 2));
        assert_eq!(grid2(8), (2, 4));
        assert_eq!(grid2(16), (4, 4));
        assert_eq!(grid2(2), (1, 2));
    }

    #[test]
    fn grid3_shapes() {
        assert_eq!(grid3(8), (2, 2, 2));
        assert_eq!(grid3(4), (2, 2, 1));
        assert_eq!(grid3(16), (4, 2, 2));
    }

    #[test]
    fn coords_rank_roundtrip() {
        let dims = (4, 2, 2);
        for r in 0..16 {
            assert_eq!(rank3(coords3(r, dims), dims), r);
        }
    }

    #[test]
    fn neighbors_wrap() {
        let dims = (2, 2, 2);
        // rank 0 at (0,0,0); +x neighbor is (1,0,0) = rank 1; -x wraps to 1.
        assert_eq!(neighbor3(0, dims, 0, 1), 1);
        assert_eq!(neighbor3(0, dims, 0, -1), 1);
        assert_eq!(neighbor3(0, dims, 2, 1), 4);
    }
}
