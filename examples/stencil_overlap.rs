//! A 2-D halo-exchange stencil, tuned three ways.
//!
//! The motivating scenario of the paper's Sec. 2.3: an application developer
//! uses the overlap report to find that their "non-blocking" halo exchange
//! hides nothing, then fixes it.
//!
//! Three variants of the same 5-point stencil over a `q x q` process grid:
//!
//! 1. **blocking** — exchange all halos, then compute the full interior;
//! 2. **nonblocking** — post Irecvs, compute the interior, then wait
//!    (looks overlapped, but with a polling progress engine the rendezvous
//!    doesn't start until the wait — the report's *min* bound exposes it);
//! 3. **nonblocking + probes** — same, with `MPI_Iprobe` sprinkled through
//!    the interior computation to drive the progress engine.
//!
//! ```text
//! cargo run --example stencil_overlap
//! ```

use overlap_suite::prelude::*;

const Q: usize = 2; // process grid side
const N: usize = 512; // local grid side
const HALO_BYTES: usize = N * 8 * 6; // three fields of one ghost row
const INTERIOR_NS: u64 = 2_500_000; // interior update cost
const STEPS: u64 = 10;

#[derive(Clone, Copy)]
enum Variant {
    Blocking,
    NonBlocking,
    NonBlockingProbed,
}

fn stencil(mpi: &mut Mpi, variant: Variant) {
    let me = mpi.rank();
    let (row, col) = (me / Q, me % Q);
    let right = row * Q + (col + 1) % Q;
    let left = row * Q + (col + Q - 1) % Q;
    let down = ((row + 1) % Q) * Q + col;
    let up = ((row + Q - 1) % Q) * Q + col;
    let halo = vec![1u8; HALO_BYTES];

    for step in 0..STEPS {
        let t = step << 8;
        match variant {
            Variant::Blocking => {
                // Halos first, compute after: nothing can overlap.
                let rs = [
                    mpi.irecv(Src::Rank(left), TagSel::Is(t + 1)),
                    mpi.irecv(Src::Rank(right), TagSel::Is(t + 2)),
                    mpi.irecv(Src::Rank(up), TagSel::Is(t + 3)),
                    mpi.irecv(Src::Rank(down), TagSel::Is(t + 4)),
                ];
                let s1 = mpi.isend(right, t + 1, &halo);
                let s2 = mpi.isend(left, t + 2, &halo);
                let s3 = mpi.isend(down, t + 3, &halo);
                let s4 = mpi.isend(up, t + 4, &halo);
                mpi.waitall(&rs);
                mpi.waitall(&[s1, s2, s3, s4]);
                mpi.compute(INTERIOR_NS);
            }
            Variant::NonBlocking | Variant::NonBlockingProbed => {
                // Post everything, compute the interior, then wait.
                let rs = [
                    mpi.irecv(Src::Rank(left), TagSel::Is(t + 1)),
                    mpi.irecv(Src::Rank(right), TagSel::Is(t + 2)),
                    mpi.irecv(Src::Rank(up), TagSel::Is(t + 3)),
                    mpi.irecv(Src::Rank(down), TagSel::Is(t + 4)),
                ];
                let s1 = mpi.isend(right, t + 1, &halo);
                let s2 = mpi.isend(left, t + 2, &halo);
                let s3 = mpi.isend(down, t + 3, &halo);
                let s4 = mpi.isend(up, t + 4, &halo);
                if matches!(variant, Variant::NonBlockingProbed) {
                    for _ in 0..4 {
                        mpi.compute(INTERIOR_NS / 5);
                        mpi.iprobe(Src::Any, TagSel::Any);
                    }
                    mpi.compute(INTERIOR_NS / 5);
                } else {
                    mpi.compute(INTERIOR_NS);
                }
                mpi.waitall(&rs);
                mpi.waitall(&[s1, s2, s3, s4]);
            }
        }
    }
}

fn run_variant(name: &str, variant: Variant) {
    let out = run_mpi(
        Q * Q,
        NetConfig::default(),
        MpiConfig::mvapich2(),
        RecorderOpts::default(),
        move |mpi| stencil(mpi, variant),
    )
    .expect("simulation failed");
    let r = &out.reports[0];
    println!(
        "{name:>22}: min {:5.1}%  max {:5.1}%  comm {:6.2} ms  elapsed {:6.2} ms",
        r.total.min_pct(),
        r.total.max_pct(),
        r.comm_call_time as f64 / 1e6,
        r.elapsed as f64 / 1e6,
    );
}

fn main() {
    println!(
        "5-point stencil, {}x{} ranks, {} B halos, direct-RDMA rendezvous\n",
        Q, Q, HALO_BYTES
    );
    run_variant("blocking", Variant::Blocking);
    run_variant("nonblocking", Variant::NonBlocking);
    run_variant("nonblocking + probes", Variant::NonBlockingProbed);
    println!(
        "\nThe nonblocking variant *attempts* overlap but the polling progress\n\
         engine only notices the rendezvous handshake inside the waits; the\n\
         probes drive progress during computation and realize the overlap —\n\
         exactly the paper's NAS SP story (Sec. 4.3)."
    );
}
