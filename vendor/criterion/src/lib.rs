//! Minimal offline stand-in for `criterion`.
//!
//! Runs each benchmark closure for a fixed number of timed iterations and
//! prints the mean wall-clock time per iteration. No statistics, no HTML
//! reports — just enough to keep `cargo bench` targets building and runnable
//! offline.

use std::time::Instant;

pub use std::hint::black_box;

const ITERS: u64 = 20;

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one("", &id.into(), &mut f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration throughput (ignored by this stub).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Set the sample count (ignored by this stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), &mut f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, f: &mut F) {
    let mut b = Bencher::default();
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.iters > 0 {
        let per_iter = b.total_ns / b.iters as u128;
        println!(
            "bench {label:<40} {per_iter:>12} ns/iter ({} iters)",
            b.iters
        );
    } else {
        println!("bench {label:<40} (no iterations)");
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    total_ns: u128,
}

impl Bencher {
    /// Time `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.iters += ITERS;
    }

    /// Time `routine` with a fresh un-timed `setup` input per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total_ns += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// Input-size hint for [`Bencher::iter_batched`] (ignored by this stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput hint for reporting (ignored by this stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate a `main` that runs benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
