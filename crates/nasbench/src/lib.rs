#![warn(missing_docs)]

//! # nasbench — NAS-Parallel-Benchmark-style kernels for the overlap suite
//!
//! Communication-faithful implementations of the NPB 3.2 benchmarks the
//! paper characterizes (Sec. 4): **BT, CG, LU, FT, SP, MG** plus **EP** and
//! **IS**. Each kernel reproduces its benchmark's *communication structure*
//! — message sizes derived from the class geometry and process-grid
//! decomposition, the same call patterns (blocking vs non-blocking, staged
//! sweeps, collectives), real payload bytes that are checksum-verified — and
//! models its *computation* analytically (flop counts at a calibrated
//! sustained rate) as virtual compute time.
//!
//! This substitution (documented in `DESIGN.md`) preserves what the paper's
//! overlap measurements respond to: the message-size distribution, the
//! comm/compute interleaving, and whether the library's progress engine gets
//! invoked during computation.
//!
//! Iteration counts are scaled down from the NPB defaults (virtual-time
//! results are per-iteration steady state, so overlap percentages are
//! insensitive to the count); the `*Params::iterations` fields hold the
//! scaled defaults and can be raised.
//!
//! The SP kernel has the paper's two variants: the **original** (Irecv +
//! monolithic compute + Wait in the solve sweeps) and the **modified** one
//! with `MPI_Iprobe` calls sprinkled through the overlap-section computation
//! (Sec. 4.3). MG has three variants: MPI, ARMCI blocking, and ARMCI
//! non-blocking (Sec. 4.4).

pub mod bt;
pub mod cg;
pub mod class;
pub mod ep;
pub mod ft;
pub mod grid;
pub mod is;
pub mod lu;
pub mod mg;
pub mod model;
pub mod runner;
pub mod sp;

pub use class::Class;
pub use runner::{NasSummary, SectionSummary};
