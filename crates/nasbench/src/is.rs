//! NAS IS (integer sort).
//!
//! Bucket sort of integer keys: per iteration, local ranking, an alltoall of
//! bucket counts (tiny blocks), an alltoall(v) of the keys themselves
//! (medium blocks), and a verification reduction. The paper omits IS from
//! its figures because "it exhibits similar overlap behavior to FT" — long
//! blocking collective transfers with no computation to hide them — which
//! this kernel reproduces.

use simmpi::{Mpi, ReduceOp};

use crate::class::Class;
use crate::model::{flops_ns, IS_KEY_FLOPS};

/// IS workload parameters.
#[derive(Debug, Clone)]
pub struct IsParams {
    /// Problem class (2^m keys).
    pub class: Class,
    /// Iterations (NPB uses 10; scaled).
    pub iterations: usize,
    /// Payload scale divisor (memory safety; compute model unscaled).
    pub vol_scale: usize,
}

impl IsParams {
    /// IS at the given class.
    pub fn new(class: Class) -> Self {
        IsParams {
            class,
            iterations: 3,
            vol_scale: if class == Class::B { 8 } else { 2 },
        }
    }

    /// log2 of the key count (NPB 3.x).
    pub fn m(&self) -> u32 {
        match self.class {
            Class::S => 16,
            Class::W => 20,
            Class::A => 23,
            Class::B => 25,
        }
    }
}

/// Run IS on the given MPI endpoint.
pub fn run_is(mpi: &mut Mpi, p: &IsParams) {
    let np = mpi.nranks();
    let me = mpi.rank();
    let total_keys = 1u64 << p.m();
    let local_keys = total_keys / np as u64;
    let rank_ns = flops_ns(local_keys as f64 * IS_KEY_FLOPS);
    // Key redistribution block: local keys split over all ranks, 4 B keys.
    let key_block = ((local_keys as usize / np) * 4) / p.vol_scale;

    for _ in 0..p.iterations {
        // Local key counting/ranking.
        mpi.compute(rank_ns);
        // Bucket-size exchange: one tiny block per rank.
        let size_blocks: Vec<Vec<u8>> = (0..np).map(|_| vec![0u8; np * 4]).collect();
        let _sizes = mpi.alltoall(&size_blocks);
        // Key exchange: medium blocks.
        let key_blocks: Vec<Vec<u8>> = (0..np).map(|d| vec![(me + d) as u8; key_block]).collect();
        let got = mpi.alltoall(&key_blocks);
        for (src, b) in got.iter().enumerate() {
            assert!(b.iter().all(|&x| x == (src + me) as u8));
        }
        // Local re-ranking of received keys.
        mpi.compute(rank_ns / 2);
        // Partial verification.
        mpi.allreduce(&[me as f64], ReduceOp::Sum);
    }
}
