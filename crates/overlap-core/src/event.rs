//! The four instrumentation events (plus section markers).
//!
//! Following the PERUSE-inspired definitions of the paper (Sec. 2.1):
//!
//! * `CALL_ENTER` / `CALL_EXIT` demarcate application calls into the
//!   communication library — everything outside is *user computation*,
//! * `XFER_BEGIN` / `XFER_END` are the library's best host-side
//!   approximations of the start and completion of the physical movement of
//!   one user message (control packets — RTS/CTS/FIN — are **not** message
//!   transfers and never generate these events).

/// One time-stamped instrumentation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Time-stamp, ns.
    pub t: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Event discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Application entered a communication-library call.
    CallEnter {
        /// Static name of the call (e.g. `"MPI_Isend"`), used for per-call
        /// statistics such as average `MPI_Wait` time.
        name: &'static str,
    },
    /// Application left the communication library.
    CallExit,
    /// The library posted the operation that (approximately) starts the
    /// physical transfer of a user message.
    XferBegin {
        /// Transfer id, unique per process; pairs with the matching
        /// [`EventKind::XferEnd`].
        id: u64,
        /// Message payload size in bytes.
        bytes: u64,
    },
    /// The library observed (via a poll) the completion of a transfer. For
    /// transfers whose initiation is invisible to this process (e.g. the
    /// receive side of an eager send), this is the only stamped event.
    XferEnd {
        /// Transfer id; may have no matching begin.
        id: u64,
        /// Message payload size in bytes (repeated so end-only transfers are
        /// self-describing).
        bytes: u64,
    },
    /// Application-level begin of a monitored code section.
    SectionBegin {
        /// Static section name (e.g. `"x_solve"`).
        name: &'static str,
    },
    /// Application-level end of the innermost monitored section.
    SectionEnd,
    /// The library learned that transfer `id` was disturbed (e.g. it had to
    /// retransmit lost packets), so the a-priori transfer time no longer
    /// describes the observed window. The processor degrades that transfer's
    /// bounds instead of reporting unsound overlap.
    XferFlag {
        /// Transfer id; may refer to an already-completed transfer.
        id: u64,
    },
}

impl Event {
    /// Convenience constructor.
    pub fn new(t: u64, kind: EventKind) -> Self {
        Event { t, kind }
    }
}
