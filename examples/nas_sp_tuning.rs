//! The paper's NAS SP tuning exercise (Sec. 4.3), end to end.
//!
//! Runs the original and Iprobe-modified SP at class A on 4, 9, and 16
//! ranks, printing the overlap bounds for the monitored "overlapping
//! section", the whole-code bounds, and the total MPI-time improvement.
//!
//! ```text
//! cargo run --release --example nas_sp_tuning
//! ```

use nasbench::runner::{run_benchmark, NasBenchmark};
use nasbench::sp::SP_OVERLAP_SECTION;
use overlap_suite::prelude::*;

fn main() {
    println!("NAS SP, class A, MVAPICH2-like environment\n");
    println!(
        "{:>3} | {:>24} | {:>24} | {:>18}",
        "np", "section min/max (orig)", "section min/max (mod)", "MPI time orig->mod"
    );
    for np in [4usize, 9, 16] {
        let orig = run_benchmark(
            NasBenchmark::Sp,
            Class::A,
            np,
            NetConfig::default(),
            RecorderOpts::default(),
        );
        let modi = run_benchmark(
            NasBenchmark::SpModified,
            Class::A,
            np,
            NetConfig::default(),
            RecorderOpts::default(),
        );
        let section = |art: &nasbench::runner::RunArtifacts| {
            let s = &art.reports()[0].sections[SP_OVERLAP_SECTION];
            (s.total.min_pct(), s.total.max_pct())
        };
        let (omin, omax) = section(&orig);
        let (mmin, mmax) = section(&modi);
        let o_mpi = orig.reports()[0].comm_call_time as f64 / 1e6;
        let m_mpi = modi.reports()[0].comm_call_time as f64 / 1e6;
        println!(
            "{np:>3} | {:>10.1} / {:>10.1} | {:>10.1} / {:>10.1} | {:>6.2} -> {:>6.2} ms",
            omin, omax, mmin, mmax, o_mpi, m_mpi
        );
    }

    println!("\nPer-size breakdown for the modified run at np=9 (process 0):\n");
    let art = run_benchmark(
        NasBenchmark::SpModified,
        Class::A,
        9,
        NetConfig::default(),
        RecorderOpts::default(),
    );
    print!("{}", art.reports()[0].render_text());
}
