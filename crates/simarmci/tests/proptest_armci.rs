//! Property tests: random one-sided operation sequences against a local
//! model of the global memory, plus bound validation.

use proptest::prelude::*;

use overlap_core::RecorderOpts;
use simarmci::run_armci;
use simnet::NetConfig;

#[derive(Debug, Clone, Copy)]
enum OneSided {
    Put {
        dst: usize,
        off: usize,
        len: usize,
        val: u8,
    },
    Get {
        src: usize,
        off: usize,
        len: usize,
    },
    AccOne {
        dst: usize,
        slot: usize,
        val: u8,
    },
    Fence,
    Barrier,
}

const SEG: usize = 4096;

fn arb_op(nranks: usize) -> impl Strategy<Value = OneSided> {
    // Puts stay in the lower half; accumulate slots own the upper half
    // (mixing raw-byte puts into f64 accumulate slots would make the local
    // model meaningless).
    prop_oneof![
        (0..nranks, 0usize..SEG / 2, 1usize..SEG / 2, any::<u8>()).prop_map(
            |(dst, off, len, val)| OneSided::Put {
                dst,
                off,
                len: len.min(SEG / 2 - off),
                val
            }
        ),
        (0..nranks, 0usize..SEG / 2, 1usize..SEG / 2).prop_map(|(src, off, len)| OneSided::Get {
            src,
            off,
            len: len.min(SEG / 2 - off)
        }),
        (0..nranks, 0usize..8, 1u8..10).prop_map(|(dst, slot, val)| OneSided::AccOne {
            dst,
            slot,
            val
        }),
        Just(OneSided::Fence),
        Just(OneSided::Barrier),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Rank 0 drives a random op sequence against idle targets while
    /// maintaining a local model of every segment; gets must always return
    /// exactly the modeled contents (single-writer semantics).
    #[test]
    fn single_writer_sequences_match_model(ops in prop::collection::vec(arb_op(3), 1..25)) {
        let ops_in = ops.clone();
        run_armci(3, NetConfig::default(), RecorderOpts::default(), move |a| {
            // Accumulate slots live in the upper half of each segment.
            let acc_base = SEG / 2;
            let mem = a.malloc(SEG);
            a.barrier();
            if a.rank() == 0 {
                let mut model = vec![vec![0u8; SEG]; a.nranks()];
                let mut accs = vec![[0f64; 8]; a.nranks()];
                for op in &ops_in {
                    match *op {
                        OneSided::Put { dst, off, len, val } => {
                            let data = vec![val; len];
                            a.put(&mem, dst, off, &data);
                            model[dst][off..off + len].copy_from_slice(&data);
                        }
                        OneSided::Get { src, off, len } => {
                            let got = a.get(&mem, src, off, len);
                            assert_eq!(&got[..], &model[src][off..off + len], "get mismatch");
                        }
                        OneSided::AccOne { dst, slot, val } => {
                            a.acc(&mem, dst, acc_base + slot * 8, &[val as f64]);
                            accs[dst][slot] += val as f64;
                            model[dst][acc_base + slot * 8..acc_base + slot * 8 + 8]
                                .copy_from_slice(&accs[dst][slot].to_le_bytes());
                        }
                        OneSided::Fence => a.all_fence(),
                        OneSided::Barrier => {}
                    }
                }
            }
            a.barrier();
        })
        .expect("run failed");
    }

    /// Bounds bracket truth for random non-blocking pipelines.
    #[test]
    fn nb_pipelines_respect_bounds(
        lens in prop::collection::vec(1usize..400_000, 1..10),
        computes in prop::collection::vec(0u64..800_000, 1..10),
    ) {
        let lens_in = lens.clone();
        let computes_in = computes.clone();
        let net = NetConfig::default();
        let out = run_armci(2, net.clone(), RecorderOpts::default(), move |a| {
            let mem = a.malloc(400_000);
            a.barrier();
            if a.rank() == 0 {
                for (i, &len) in lens_in.iter().enumerate() {
                    let h = a.nb_put(&mem, 1, 0, &vec![i as u8; len]);
                    a.compute(computes_in[i % computes_in.len()]);
                    a.wait(h);
                }
            }
            a.barrier();
        })
        .expect("run failed");
        let table = simmpi::default_xfer_table(&net);
        let r = &out.reports[0].total;
        let truth = out.true_overlap(0);
        let slack = out.congestion_excess(0, &table);
        prop_assert!(r.min_overlap <= truth, "min {} > truth {}", r.min_overlap, truth);
        prop_assert!(truth <= r.max_overlap + slack);
        prop_assert_eq!(r.transfers as usize, lens.len());
    }
}
