//! NAS CG (conjugate gradient).
//!
//! 2-D decomposition of the sparse matrix over `rows × cols` processes
//! (power-of-two counts). Each inner CG step does a sparse matvec followed
//! by a row-wise sum reduction (a log-tree of tiny messages) and a transpose
//! exchange of the partial vector with the symmetric partner (a longer
//! message). CG therefore sends "a larger proportion of short messages"
//! than BT (paper Sec. 4.1), which is why its overlap numbers come out
//! higher under the same Open MPI pipelined configuration (Figure 11).

use simmpi::{Mpi, Src, TagSel};

use crate::class::Class;
use crate::grid::grid2;
use crate::model::{flops_ns, CG_MATVEC_FLOPS, CG_VECTOR_FLOPS};

/// CG workload parameters.
#[derive(Debug, Clone)]
pub struct CgParams {
    /// Problem class.
    pub class: Class,
    /// Outer iterations (scaled from NPB's 15/75).
    pub iterations: usize,
    /// Inner CG iterations per outer step (NPB uses 25).
    pub inner: usize,
}

impl CgParams {
    /// CG at the given class with scaled iterations.
    pub fn new(class: Class) -> Self {
        CgParams {
            class,
            iterations: 2,
            inner: 10,
        }
    }

    /// Matrix dimension `na` (NPB 3.x).
    pub fn na(&self) -> usize {
        match self.class {
            Class::S => 1400,
            Class::W => 7000,
            Class::A => 14000,
            Class::B => 75000,
        }
    }

    /// Nonzeros per row (NPB `nonzer`+1 band estimate).
    pub fn nonzer(&self) -> usize {
        match self.class {
            Class::S => 7,
            Class::W => 8,
            Class::A => 11,
            Class::B => 13,
        }
    }
}

/// Run CG on the given MPI endpoint. `mpi.nranks()` must be a power of two.
pub fn run_cg(mpi: &mut Mpi, p: &CgParams) {
    let np = mpi.nranks();
    let (nrows, ncols) = grid2(np);
    let me = mpi.rank();
    let (my_row, my_col) = (me / ncols, me % ncols);
    let na = p.na();

    // Local vector slice and nonzero share.
    let vec_elems = na / ncols; // elements exchanged in the transpose step
    let nnz_local = (na * p.nonzer() * (p.nonzer() + 1)) / np;
    let matvec_ns = flops_ns(nnz_local as f64 * CG_MATVEC_FLOPS);
    let vector_ns = flops_ns((na / nrows) as f64 * CG_VECTOR_FLOPS);

    // Transpose partner: the mirrored process for square grids; for 2:1
    // grids NPB pairs the two column halves — approximated with an offset.
    let partner = if nrows == ncols {
        my_col * ncols + my_row
    } else {
        (me + np / 2) % np
    };
    let exch_bytes = vec_elems * 8;
    let exch = vec![me as u8; exch_bytes];

    for outer in 0..p.iterations {
        for inner in 0..p.inner {
            let tag = ((outer * p.inner + inner) as u64) << 8;
            // Sparse matvec on the local block.
            mpi.compute(matvec_ns);
            // Row-wise sum reduction of the result vector: recursive
            // halving — each round exchanges half the remaining segment
            // (NPB CG's `sum reduction on w`), so sizes ladder down from
            // vector-scale to short.
            let mut dist = 1;
            let mut seg = vec_elems * 8;
            while dist < ncols {
                let peer = my_row * ncols + (my_col ^ dist);
                let chunk = vec![3u8; seg.max(8)];
                mpi.sendrecv(
                    peer,
                    tag + dist as u64,
                    &chunk,
                    Src::Rank(peer),
                    TagSel::Is(tag + dist as u64),
                );
                mpi.compute(flops_ns((seg / 8) as f64));
                seg /= 2;
                dist <<= 1;
            }
            // Transpose exchange of the partial result vector (diagonal
            // processes copy locally, as in NPB).
            if partner != me {
                let r = mpi.irecv(Src::Rank(partner), TagSel::Is(tag + 100));
                mpi.send(partner, tag + 100, &exch);
                mpi.wait(r);
            } else {
                mpi.compute(flops_ns(vec_elems as f64));
            }
            // Vector updates (axpy, dot products).
            mpi.compute(vector_ns);
            // Global dot product: another row reduction.
            let mut dist = 1;
            while dist < ncols {
                let peer_col = my_col ^ dist;
                if peer_col < ncols {
                    let peer = my_row * ncols + peer_col;
                    mpi.sendrecv(
                        peer,
                        tag + 200 + dist as u64,
                        &[2u8; 8],
                        Src::Rank(peer),
                        TagSel::Is(tag + 200 + dist as u64),
                    );
                }
                dist <<= 1;
            }
        }
        // Residual norm across all ranks.
        mpi.allreduce(&[outer as f64], simmpi::ReduceOp::Sum);
    }
}
