//! Full-stack scheduler-equivalence tests: an MPI run on a lossy,
//! oracle-perturbed fabric must be byte-identical between the coroutine
//! (fiber) rank runtime and the OS-thread reference runtime.
//!
//! The simcore-level suite pins the engines on synthetic event streams;
//! this one drives the whole stack — reliability layer retries under random
//! [`FaultPlan`]s, collective trees, rendezvous handshakes, and
//! [`RandomOracle`]-permuted schedules — and compares the complete
//! [`MpiRunOutcome`] (reports, transfers, activity, faults, reliability
//! counters) plus the recorded choice trace between the two runtimes.

use overlap_core::RecorderOpts;
use proptest::prelude::*;
use simcore::{OracleHandle, RandomOracle, RankRuntime, SimOpts};
use simmpi::{default_xfer_table, run_mpi_explored, MpiConfig, ProgressModel, Src, TagSel};
use simnet::{FaultPlan, NetConfig};

fn payload(rank: usize, round: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (rank.wrapping_mul(31) ^ round.wrapping_mul(17) ^ i) as u8)
        .collect()
}

/// Ring exchange plus an allreduce per round: touches eager and rendezvous
/// point-to-point, nonblocking completion, and the collective tree.
fn workload(mpi: &mut simmpi::Mpi, sizes: &[usize]) {
    let me = mpi.rank();
    let n = mpi.nranks();
    let dst = (me + 1) % n;
    let src = (me + n - 1) % n;
    for (round, &len) in sizes.iter().enumerate() {
        let data = payload(me, round, len);
        let sr = mpi.isend(dst, round as u64, &data);
        let st = mpi.recv(Src::Rank(src), TagSel::Is(round as u64));
        assert_eq!(st.into_data(), payload(src, round, len));
        mpi.wait(sr);
        let _ = mpi.allreduce(&[len as f64 + me as f64], simmpi::ReduceOp::Sum);
    }
}

/// Debug render of everything a run produces, plus the oracle's choice
/// trace. All report-facing containers are `BTreeMap`s, so the render is
/// deterministic and any divergence — an activity boundary, a retry count,
/// a reordered transfer — fails the equality.
fn fingerprint(
    runtime: RankRuntime,
    net: &NetConfig,
    oracle_seed: Option<u64>,
    sizes: &[usize],
) -> String {
    fingerprint_model(runtime, net, oracle_seed, sizes, ProgressModel::Polling)
}

fn fingerprint_model(
    runtime: RankRuntime,
    net: &NetConfig,
    oracle_seed: Option<u64>,
    sizes: &[usize],
    model: ProgressModel,
) -> String {
    let oracle = oracle_seed.map(|seed| OracleHandle::new(Box::new(RandomOracle::new(seed))));
    let opts = SimOpts {
        runtime,
        ..SimOpts::default()
    };
    let sizes: Vec<usize> = sizes.to_vec();
    let cfg = MpiConfig {
        progress: model,
        ..MpiConfig::default()
    };
    let out = run_mpi_explored(
        4,
        net.clone(),
        cfg,
        RecorderOpts::default(),
        default_xfer_table(net),
        opts,
        oracle.clone(),
        move |mpi| workload(mpi, &sizes),
    )
    .expect("run completes under both runtimes");
    let choices = oracle.map(|o| o.trace()).unwrap_or_default();
    format!("{out:?} choices={choices:?}")
}

/// Probabilities are drawn as integer percentage points so the vendored
/// proptest's integer strategies can generate them.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (0u64..1_000_000, 0u64..8, 0u64..8, 0u64..8).prop_map(|(seed, drop, dup, delay)| FaultPlan {
        seed,
        drop_prob: drop as f64 / 100.0,
        duplicate_prob: dup as f64 / 100.0,
        delay_prob: delay as f64 / 100.0,
        max_extra_delay: 15_000,
        ..FaultPlan::none()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random fault plans, canonical schedule: drops, duplicates, and
    /// delays trigger runtime-visible retry/park traffic, and both runtimes
    /// must agree on every byte of the outcome.
    #[test]
    fn runtimes_agree_under_random_fault_plans(plan in arb_plan()) {
        let net = NetConfig { faults: plan, ..NetConfig::default() };
        let sizes = [64usize, 4096, 64 << 10];
        let a = fingerprint(RankRuntime::Coroutine, &net, None, &sizes);
        let b = fingerprint(RankRuntime::OsThreads, &net, None, &sizes);
        prop_assert_eq!(a, b);
    }

    /// Random fault plans *and* a random schedule oracle with fault-timing
    /// jitter enabled — the full nondeterminism surface the explorer
    /// exercises. The recorded choice traces must match exactly, proving
    /// both runtimes present the identical choice-point sequence.
    #[test]
    fn runtimes_agree_under_oracle_and_faults(
        plan in arb_plan(),
        oracle_seed in any::<u64>(),
    ) {
        let plan = FaultPlan {
            explore_jitter_ns: 2_000,
            explore_jitter_steps: 4,
            ..plan
        };
        let net = NetConfig { faults: plan, ..NetConfig::default() };
        let sizes = [64usize, 4096];
        let a = fingerprint(RankRuntime::Coroutine, &net, Some(oracle_seed), &sizes);
        let b = fingerprint(RankRuntime::OsThreads, &net, Some(oracle_seed), &sizes);
        prop_assert_eq!(a, b);
    }

    /// Every progress model — including the async-rank fiber, whose
    /// `ProgressWake` consultations appear in the oracle trace — must be
    /// byte-identical between the two rank runtimes.
    #[test]
    fn runtimes_agree_under_each_progress_model(oracle_seed in any::<u64>()) {
        let net = NetConfig::default();
        let sizes = [64usize, 4096, 64 << 10];
        for model in [
            ProgressModel::Polling,
            ProgressModel::AsyncRank {
                poll_interval: ProgressModel::DEFAULT_POLL_INTERVAL,
            },
            ProgressModel::EarlyBird,
            ProgressModel::HwTag,
        ] {
            let a = fingerprint_model(
                RankRuntime::Coroutine, &net, Some(oracle_seed), &sizes, model);
            let b = fingerprint_model(
                RankRuntime::OsThreads, &net, Some(oracle_seed), &sizes, model);
            prop_assert_eq!(a, b, "divergence under {}", model.label());
        }
    }
}
