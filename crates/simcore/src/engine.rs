//! The discrete-event engine and cooperative rank scheduler.
//!
//! The engine owns a time-ordered queue of entries, each either a
//! state-mutating callback (used by the network model), a token delivery
//! (a pre-registered handler applied to a `u64`, the allocation-free fast
//! path), or a rank wake-up. Ranks execute as run-to-completion coroutines:
//! on x86_64 Linux each rank is a stackful fiber (see `crate::fiber`)
//! resumed and suspended by swapping stack pointers on the engine's own
//! thread, so a park/wake handoff costs two register swaps instead of a
//! futex round-trip. Elsewhere — and on demand via
//! [`RankRuntime::OsThreads`], which doubles as the reference model for the
//! runtime-equivalence tests — ranks fall back to dedicated OS threads
//! rendezvousing over a channel pair. Either way the engine hands control
//! to at most one rank at a time, so the whole simulation is logically
//! single-threaded and deterministic: entries are ordered by
//! `(time, sequence-number)`, and both drivers observe the identical entry
//! stream, which is the determinism argument in one sentence.
//!
//! # Queue architecture
//!
//! The pending-event set lives in a hierarchical [`TimingWheel`] owned by
//! the run loop itself — popping takes no lock. Producers (rank
//! continuations and event callbacks) append to one of a small number of
//! sharded insertion buffers, picked per thread, and flag the shard in an
//! atomic occupancy mask. Before each pop the engine drains exactly the
//! flagged shards into the wheel, so a shard lock is taken once per drain
//! batch rather than once per event, and an idle shard costs nothing. In
//! coroutine mode every producer shares the engine thread, so exactly one
//! shard is ever touched and its lock is never contended. Global
//! `(time, seq)` order is restored inside the wheel no matter which shard
//! an entry travelled through, because sequence numbers are allocated in
//! program order at push time.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::error::SimError;
use crate::oracle::{ChoicePoint, OracleHandle};
use crate::rank::{RankCtx, YieldPort};
use crate::sched::TimingWheel;
use crate::time::{Duration, Time};
use crate::truth::ActivityLog;

/// A scheduled callback: runs at its time with access to the engine handle so
/// it can schedule follow-up events and wake ranks.
type Callback = Box<dyn FnOnce(&EngineHandle) + Send>;

/// Handler for [`Action::Token`] entries, registered once per simulation via
/// [`EngineHandle::set_token_handler`].
type TokenHandler = Arc<dyn Fn(&EngineHandle, u64) + Send + Sync>;

/// The rank body as the engine stores it: one shared closure, run once per
/// rank on that rank's continuation.
type RankBody = Arc<dyn Fn(&mut RankCtx) + Send + Sync>;

pub(crate) enum Action {
    WakeRank(usize),
    Call(Callback),
    Token(u64),
}

pub(crate) struct Entry {
    time: Time,
    seq: u64,
    action: Action,
}

/// Rank lifecycle phases, stored in [`RankCell::phase`].
const PH_NOT_STARTED: u8 = 0;
const PH_RUNNING: u8 = 1;
const PH_SLEEPING: u8 = 2;
const PH_PARKED: u8 = 3;
const PH_DONE: u8 = 4;

/// Per-rank scheduling state. One cache line each so wakes of different
/// ranks never false-share; plain atomics with relaxed ordering because the
/// strict engine↔rank handoff already serializes every access (in threaded
/// mode the rendezvous channel provides the happens-before edge).
#[repr(align(64))]
struct RankCell {
    phase: AtomicU8,
    /// True while a wake-up entry for this rank is in flight (idempotence).
    wake_pending: AtomicBool,
}

impl RankCell {
    fn new() -> Self {
        RankCell {
            phase: AtomicU8::new(PH_NOT_STARTED),
            wake_pending: AtomicBool::new(false),
        }
    }
}

/// Library-supplied diagnostic notes for one rank, dumped on deadlock.
///
/// Updated on the rank's hot yield path, so the fields are designed to be
/// cheap to refresh: the blocked-on note is a shared `Arc<str>` the library
/// re-clones only when its state fingerprint changes, and the last-call name
/// is a `&'static str` stored by pointer.
#[derive(Default)]
pub(crate) struct DiagSlot {
    pub(crate) blocked_on: Option<Arc<str>>,
    pub(crate) last_call: Option<&'static str>,
    /// Structured wait-for edge: the rank this one is waiting on, if the
    /// library can name a single peer (used for deadlock cycle reports).
    pub(crate) waits_on_rank: Option<usize>,
    /// The library-level request id the rank is blocked in, if any.
    pub(crate) waits_on_req: Option<u64>,
}

/// A cell whose accesses are serialized by the engine's strict handoff
/// rather than by a lock: at any instant exactly one continuation (the
/// engine or one rank) is running, and in threaded mode the rendezvous
/// channels carry the happens-before edges between them. Diag slots sit on
/// the park hot path, so they use this instead of a `Mutex` — a write is a
/// plain store, not an atomic RMW.
pub(crate) struct SeqCell<T>(UnsafeCell<T>);

// SAFETY: see the type docs — the engine's handoff discipline guarantees
// exclusive, synchronized access; `with` is `unsafe` to make each access
// site restate that obligation.
unsafe impl<T: Send> Sync for SeqCell<T> {}

impl<T> SeqCell<T> {
    fn new(v: T) -> Self {
        SeqCell(UnsafeCell::new(v))
    }

    /// Run `f` with exclusive access to the value.
    ///
    /// # Safety
    ///
    /// The caller must be the sole running continuation (a rank touching its
    /// own slot while the engine is suspended in `resume`, or the engine
    /// while every rank is suspended).
    pub(crate) unsafe fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        // SAFETY: exclusivity per the caller contract above.
        unsafe { f(&mut *self.0.get()) }
    }
}

/// Number of insertion-buffer shards. Power of two; at most 64 so the
/// occupancy mask fits one `u64`.
const INBOX_SHARDS: usize = 16;

/// One insertion buffer, padded to its own cache line so producers on
/// different shards never false-share.
#[repr(align(64))]
struct InboxShard {
    buf: Mutex<Vec<Entry>>,
}

/// Global producer counter used to spread threads across inbox shards.
static PRODUCER_IDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's inbox shard index.
    static MY_SHARD: usize =
        PRODUCER_IDS.fetch_add(1, AtomicOrdering::Relaxed) % INBOX_SHARDS;
}

pub(crate) struct EngineShared {
    inbox: Box<[InboxShard]>,
    /// Bit `s` set ⇒ shard `s` may hold entries; swapped to zero on drain.
    inbox_mask: AtomicU64,
    now: AtomicU64,
    seq: AtomicU64,
    cells: Box<[RankCell]>,
    pub(crate) diags: Box<[SeqCell<DiagSlot>]>,
    token_handler: Mutex<Option<TokenHandler>>,
    oracle: Mutex<Option<OracleHandle>>,
}

impl EngineShared {
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, AtomicOrdering::Relaxed)
    }

    fn push(&self, time: Time, action: Action) {
        let seq = self.next_seq();
        self.push_with_seq(time, seq, action);
    }

    fn push_with_seq(&self, time: Time, seq: u64, action: Action) {
        let shard = MY_SHARD.with(|s| *s);
        self.inbox[shard]
            .buf
            .lock()
            .push(Entry { time, seq, action });
        self.inbox_mask
            .fetch_or(1 << shard, AtomicOrdering::Release);
    }

    /// Move every buffered entry into the wheel. Only shards flagged in the
    /// occupancy mask are visited (and locked), once per drain.
    fn drain_inbox(&self, wheel: &mut TimingWheel<Action>) {
        let mut mask = self.inbox_mask.swap(0, AtomicOrdering::Acquire);
        while mask != 0 {
            let s = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let mut buf = self.inbox[s].buf.lock();
            for e in buf.drain(..) {
                wheel.push(e.time, e.seq, e.action);
            }
        }
    }
}

/// Cloneable handle into a running (or not-yet-run) simulation. Event
/// callbacks and library code use it to read the clock, schedule future
/// events, and wake parked ranks.
#[derive(Clone)]
pub struct EngineHandle {
    pub(crate) shared: Arc<EngineShared>,
}

impl EngineHandle {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.shared.now.load(AtomicOrdering::Relaxed)
    }

    /// Schedule `f` to run at absolute virtual time `t` (clamped to `now`).
    pub fn schedule_at<F>(&self, t: Time, f: F)
    where
        F: FnOnce(&EngineHandle) + Send + 'static,
    {
        let t = t.max(self.now());
        self.shared.push(t, Action::Call(Box::new(f)));
    }

    /// Schedule `f` to run `delay` nanoseconds from now.
    pub fn schedule_in<F>(&self, delay: Duration, f: F)
    where
        F: FnOnce(&EngineHandle) + Send + 'static,
    {
        self.schedule_at(self.now().saturating_add(delay), f);
    }

    /// Register the handler invoked for every token scheduled with
    /// [`EngineHandle::schedule_token`]. One handler per simulation (a later
    /// call replaces the previous one); it must be installed before
    /// [`crate::Simulation::run`], which snapshots it once at startup.
    pub fn set_token_handler<F>(&self, f: F)
    where
        F: Fn(&EngineHandle, u64) + Send + Sync + 'static,
    {
        *self.shared.token_handler.lock() = Some(Arc::new(f));
    }

    /// Schedule the registered token handler to run on `token` at absolute
    /// virtual time `t` (clamped to `now`). Unlike [`EngineHandle::schedule_at`]
    /// this allocates nothing: the token is a plain `u64`, typically an index
    /// into a caller-owned arena describing the work.
    pub fn schedule_token(&self, t: Time, token: u64) {
        let t = t.max(self.now());
        self.shared.push(t, Action::Token(token));
    }

    /// Allocate the next global sequence number without scheduling anything.
    ///
    /// Entries are dispatched in `(time, seq)` order, so a model that wants
    /// to *defer* inserting an event (e.g. simnet's per-link delivery
    /// batching) can claim its place in program order now and hand the seq
    /// back later via [`EngineHandle::schedule_token_seq`]; the dispatch
    /// order is then byte-identical to scheduling eagerly, as long as the
    /// entry is inserted before its due time is reached.
    pub fn alloc_seq(&self) -> u64 {
        self.shared.next_seq()
    }

    /// Schedule a token with a sequence number previously claimed via
    /// [`EngineHandle::alloc_seq`] (`t` is clamped to `now`). Reusing or
    /// fabricating sequence numbers does not break memory safety but does
    /// destroy the deterministic total order — use only as documented.
    pub fn schedule_token_seq(&self, t: Time, seq: u64, token: u64) {
        let t = t.max(self.now());
        self.shared.push_with_seq(t, seq, Action::Token(token));
    }

    /// Install a schedule oracle controlling the engine's nondeterminism
    /// points (see [`crate::oracle`]). Like the token handler it must be
    /// installed before [`crate::Simulation::run`], which snapshots it once
    /// at startup; library layers query it per choice point via
    /// [`EngineHandle::oracle`]. Without an oracle the engine takes its
    /// original fixed-policy fast path.
    pub fn set_oracle(&self, oracle: OracleHandle) {
        *self.shared.oracle.lock() = Some(oracle);
    }

    /// The installed schedule oracle, if any.
    pub fn oracle(&self) -> Option<OracleHandle> {
        self.shared.oracle.lock().clone()
    }

    /// Wake rank `r` if it is parked. No-op for running, sleeping (a rank
    /// that is mid-`compute` is uninterruptible — it discovers new state at
    /// its next library call), or finished ranks. Idempotent: at most one
    /// wake-up entry is outstanding per parked rank.
    pub fn wake_rank(&self, r: usize) {
        let cell = &self.shared.cells[r];
        if cell.phase.load(AtomicOrdering::Relaxed) != PH_PARKED {
            return;
        }
        if !cell.wake_pending.swap(true, AtomicOrdering::Relaxed) {
            self.shared.push(self.now(), Action::WakeRank(r));
        }
    }
}

/// How rank continuations are hosted. The choice affects host performance
/// only: both runtimes observe the identical `(time, seq)` entry stream, so
/// every simulation output is byte-identical between them (pinned by the
/// `runtime_equivalence` test suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankRuntime {
    /// Stackful fibers resumed on the engine thread — a park/wake is a
    /// pointer swap. The default; falls back to [`RankRuntime::OsThreads`]
    /// on targets without fiber support (currently anything that is not
    /// x86_64 Linux).
    #[default]
    Coroutine,
    /// One OS thread per rank, rendezvousing with the engine over a channel
    /// pair. ~45x slower on park/wake-heavy workloads; kept as the portable
    /// fallback and as the reference model the coroutine runtime is tested
    /// against.
    OsThreads,
}

/// Resource limits for a simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOpts {
    /// Abort with [`SimError::TimeLimitExceeded`] if virtual time passes this.
    pub max_time: Option<Time>,
    /// Abort with [`SimError::EventLimitExceeded`] after this many entries.
    pub max_events: Option<u64>,
    /// How to host rank continuations (performance-only knob; see
    /// [`RankRuntime`]).
    pub runtime: RankRuntime,
}

/// Successful simulation result.
#[derive(Debug)]
pub struct SimOutcome {
    /// Virtual time when the last entry was processed.
    pub end_time: Time,
    /// Per-rank ground-truth activity logs.
    pub activity: Vec<ActivityLog>,
    /// Number of queue entries processed (events + wake-ups).
    pub events_processed: u64,
}

#[derive(Debug)]
pub(crate) enum YieldMsg {
    Sleep(Time),
    Park,
    Done(ActivityLog),
    Panicked(String),
}

/// Hosts the rank continuations for one run and resumes them on demand.
/// Exactly one variant exists per run; the main loop is driver-agnostic.
enum Driver {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    Fibers(FiberDriver),
    Threads(ThreadDriver),
}

impl Driver {
    fn spawn(
        runtime: RankRuntime,
        n: usize,
        shared: &Arc<EngineShared>,
        body: &RankBody,
        fail_spawn: Option<usize>,
    ) -> Result<Driver, SimError> {
        match runtime {
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            RankRuntime::Coroutine => {
                FiberDriver::spawn(n, shared, body, fail_spawn).map(Driver::Fibers)
            }
            #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
            RankRuntime::Coroutine => {
                ThreadDriver::spawn(n, shared, body, fail_spawn).map(Driver::Threads)
            }
            RankRuntime::OsThreads => {
                ThreadDriver::spawn(n, shared, body, fail_spawn).map(Driver::Threads)
            }
        }
    }

    /// Hand control to rank `r` until it yields; returns its message.
    fn resume(&mut self, r: usize) -> Result<YieldMsg, SimError> {
        match self {
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            Driver::Fibers(d) => d.resume(r),
            Driver::Threads(d) => d.resume(r),
        }
    }

    /// Tear down every continuation that has not finished: suspended bodies
    /// observe the designed `"simulation aborted"` unwind so their
    /// destructors run, exactly as on the success path.
    fn shutdown(self) {
        match self {
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            Driver::Fibers(d) => drop(d),
            Driver::Threads(d) => d.shutdown(),
        }
    }
}

/// Fiber-hosted ranks: all continuations live on the engine thread.
/// Dropping the driver aborts any suspended fiber (see `crate::fiber`).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
struct FiberDriver {
    fibers: Vec<crate::fiber::Fiber>,
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
impl FiberDriver {
    fn spawn(
        n: usize,
        shared: &Arc<EngineShared>,
        body: &RankBody,
        fail_spawn: Option<usize>,
    ) -> Result<FiberDriver, SimError> {
        let mut fibers = Vec::with_capacity(n);
        for r in 0..n {
            let made = if fail_spawn == Some(r) {
                Err(std::io::Error::other("injected spawn failure (test hook)"))
            } else {
                let body = Arc::clone(body);
                let shared = Arc::clone(shared);
                crate::fiber::Fiber::new(Box::new(move |data| {
                    let mut ctx = RankCtx::new(r, n, shared, YieldPort::Fiber(data));
                    body(&mut ctx);
                    let log = ctx.take_log();
                    // SAFETY: running on this fiber; the engine is suspended.
                    unsafe { (*data).msg = Some(YieldMsg::Done(log)) };
                }))
            };
            match made {
                Ok(f) => fibers.push(f),
                // Already-created fibers never started, so dropping them
                // releases their stacks without any teardown unwind; the
                // caller then drains whatever was pre-scheduled.
                Err(e) => {
                    return Err(SimError::SpawnFailed {
                        rank: r,
                        message: e.to_string(),
                    })
                }
            }
        }
        Ok(FiberDriver { fibers })
    }

    fn resume(&mut self, r: usize) -> Result<YieldMsg, SimError> {
        match self.fibers[r].resume() {
            Some(m) => Ok(m),
            None => Err(SimError::RankPanic {
                rank: r,
                message: "rank coroutine finished without a completion message".into(),
            }),
        }
    }
}

/// Thread-hosted ranks: the original rendezvous-channel design, kept as the
/// portable fallback and the equivalence-test reference model.
struct ThreadDriver {
    resume_txs: Vec<Sender<()>>,
    yield_rxs: Vec<Receiver<YieldMsg>>,
    joins: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadDriver {
    fn spawn(
        n: usize,
        shared: &Arc<EngineShared>,
        body: &RankBody,
        fail_spawn: Option<usize>,
    ) -> Result<ThreadDriver, SimError> {
        let mut resume_txs: Vec<Sender<()>> = Vec::with_capacity(n);
        let mut yield_rxs: Vec<Receiver<YieldMsg>> = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);
        for r in 0..n {
            let (resume_tx, resume_rx) = bounded::<()>(1);
            let (yield_tx, yield_rx) = bounded::<YieldMsg>(1);
            resume_txs.push(resume_tx);
            yield_rxs.push(yield_rx);
            let body = Arc::clone(body);
            let shared = Arc::clone(shared);
            let spawned = if fail_spawn == Some(r) {
                Err(std::io::Error::other("injected spawn failure (test hook)"))
            } else {
                std::thread::Builder::new()
                    .name(format!("sim-rank-{r}"))
                    .spawn(move || {
                        // Wait for the first wake-up; if the engine aborted
                        // before starting us, just exit.
                        if resume_rx.recv().is_err() {
                            return;
                        }
                        let done_tx = yield_tx.clone();
                        let mut ctx = RankCtx::new(
                            r,
                            n,
                            shared,
                            YieldPort::Thread {
                                yield_tx,
                                resume_rx,
                            },
                        );
                        let result = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                        match result {
                            Ok(()) => {
                                let log = ctx.take_log();
                                let _ = done_tx.send(YieldMsg::Done(log));
                            }
                            Err(payload) => {
                                let msg = panic_message(payload.as_ref());
                                let _ = done_tx.send(YieldMsg::Panicked(msg));
                            }
                        }
                    })
            };
            match spawned {
                Ok(j) => joins.push(j),
                Err(e) => {
                    // Unblock the threads spawned so far (their first recv
                    // errors out and they exit) before reporting.
                    drop(resume_txs);
                    for j in joins {
                        let _ = j.join();
                    }
                    return Err(SimError::SpawnFailed {
                        rank: r,
                        message: e.to_string(),
                    });
                }
            }
        }
        Ok(ThreadDriver {
            resume_txs,
            yield_rxs,
            joins,
        })
    }

    fn resume(&mut self, r: usize) -> Result<YieldMsg, SimError> {
        if self.resume_txs[r].send(()).is_err() {
            return Err(SimError::RankPanic {
                rank: r,
                message: "rank thread exited unexpectedly".into(),
            });
        }
        match self.yield_rxs[r].recv() {
            Ok(m) => Ok(m),
            Err(_) => Err(SimError::RankPanic {
                rank: r,
                message: "rank thread dropped its yield channel".into(),
            }),
        }
    }

    fn shutdown(self) {
        // Dropping the resume senders unblocks any waiting threads (their
        // recv errors and they unwind out of the rank body).
        drop(self.resume_txs);
        for j in self.joins {
            let _ = j.join();
        }
    }
}

/// A simulation: `nranks` cooperative processes over one virtual clock.
pub struct Simulation {
    shared: Arc<EngineShared>,
    nranks: usize,
    fail_spawn: Option<usize>,
}

impl Simulation {
    /// Create a simulation with `nranks` ranks. The engine handle is
    /// available immediately (e.g. to build the network model) even before
    /// [`Simulation::run`] is called.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "simulation needs at least one rank");
        Simulation {
            shared: Arc::new(EngineShared {
                inbox: (0..INBOX_SHARDS)
                    .map(|_| InboxShard {
                        buf: Mutex::new(Vec::new()),
                    })
                    .collect(),
                inbox_mask: AtomicU64::new(0),
                now: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                cells: (0..nranks).map(|_| RankCell::new()).collect(),
                diags: (0..nranks)
                    .map(|_| SeqCell::new(DiagSlot::default()))
                    .collect(),
                token_handler: Mutex::new(None),
                oracle: Mutex::new(None),
            }),
            nranks,
            fail_spawn: None,
        }
    }

    /// Handle for scheduling events and waking ranks.
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Test hook: make spawning rank `rank`'s continuation fail as if the
    /// host refused it, exercising the partial-fleet teardown path. Both
    /// runtimes honor it.
    #[doc(hidden)]
    pub fn inject_spawn_failure(&mut self, rank: usize) {
        self.fail_spawn = Some(rank);
    }

    /// Drop every queued-but-undispatched entry and reset per-rank state.
    ///
    /// Runs on **every** exit from [`Simulation::run`] — success, error, and
    /// the partial-spawn-failure path — so teardown is deterministic: a
    /// callback scheduled before an aborted run cannot keep its captures
    /// alive or leave a stale wake/diag entry behind for a handle that
    /// outlives the run.
    fn drain_reset(&self) {
        self.shared.inbox_mask.store(0, AtomicOrdering::Relaxed);
        for shard in self.shared.inbox.iter() {
            shard.buf.lock().clear();
        }
        for cell in self.shared.cells.iter() {
            cell.phase.store(PH_DONE, AtomicOrdering::Relaxed);
            cell.wake_pending.store(false, AtomicOrdering::Relaxed);
        }
        for d in self.shared.diags.iter() {
            // SAFETY: no rank continuation is live (the driver was shut down
            // or never constructed), so the engine is the sole accessor.
            unsafe { d.with(|d| *d = DiagSlot::default()) };
        }
    }

    /// Run `body` once per rank to completion. Returns the outcome or the
    /// first terminal error (deadlock, rank panic, resource limit).
    pub fn run<F>(self, opts: SimOpts, body: F) -> Result<SimOutcome, SimError>
    where
        F: Fn(&mut RankCtx) + Send + Sync + 'static,
    {
        install_abort_hook();
        let n = self.nranks;
        let body: RankBody = Arc::new(body);
        let mut driver = match Driver::spawn(opts.runtime, n, &self.shared, &body, self.fail_spawn)
        {
            Ok(d) => d,
            Err(e) => {
                self.drain_reset();
                return Err(e);
            }
        };

        // The pending-event set. Owned by this loop: pops never lock. The
        // handler snapshot is taken once — tokens are dispatched without
        // touching the registration mutex again.
        let mut wheel: TimingWheel<Action> = TimingWheel::new();
        let token_handler = self.shared.token_handler.lock().clone();
        let oracle = self.shared.oracle.lock().clone();

        // Kick off every rank at t = 0.
        for r in 0..n {
            let seq = self.shared.next_seq();
            wheel.push(0, seq, Action::WakeRank(r));
        }

        let handle = self.handle();
        let mut logs: Vec<Option<ActivityLog>> = (0..n).map(|_| None).collect();
        let mut events: u64 = 0;
        let result = 'main: loop {
            // Adopt everything produced since the last entry ran. Ranks only
            // execute while the engine is suspended in `resume`, so by this
            // point all their pushes are visible and nothing new can arrive
            // before the pop below.
            self.shared.drain_inbox(&mut wheel);
            let popped = match &oracle {
                None => wheel.pop(),
                Some(orc) => pop_with_oracle(&mut wheel, orc),
            };
            let Some((time, _seq, action)) = popped else {
                let stuck: Vec<usize> = self
                    .shared
                    .cells
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.phase.load(AtomicOrdering::Relaxed) != PH_DONE)
                    .map(|(i, _)| i)
                    .collect();
                if stuck.is_empty() {
                    break Ok(());
                }
                let diags = stuck
                    .iter()
                    .map(|&r| {
                        // SAFETY: every rank is suspended (the queue is
                        // empty, so none is mid-resume); the engine is the
                        // sole accessor.
                        unsafe {
                            self.shared.diags[r].with(|d| crate::error::RankDiag {
                                rank: r,
                                blocked_on: d.blocked_on.as_ref().map(|s| s.to_string()),
                                last_call: d.last_call.map(|s| s.to_string()),
                                waits_on_rank: d.waits_on_rank,
                                waits_on_req: d.waits_on_req,
                            })
                        }
                    })
                    .collect();
                break Err(SimError::Deadlock {
                    parked: stuck,
                    at: handle.now(),
                    diags,
                });
            };
            events += 1;
            if let Some(limit) = opts.max_events {
                if events > limit {
                    break Err(SimError::EventLimitExceeded { limit });
                }
            }
            if let Some(limit) = opts.max_time {
                if time > limit {
                    break Err(SimError::TimeLimitExceeded { limit });
                }
            }
            debug_assert!(time >= handle.now(), "time went backwards");
            self.shared.now.store(time, AtomicOrdering::Relaxed);

            match action {
                Action::Call(f) => f(&handle),
                Action::Token(tok) => {
                    debug_assert!(
                        token_handler.is_some(),
                        "token {tok} scheduled without a registered handler"
                    );
                    if let Some(h) = &token_handler {
                        h(&handle, tok);
                    }
                }
                Action::WakeRank(r) => {
                    let cell = &self.shared.cells[r];
                    cell.wake_pending.store(false, AtomicOrdering::Relaxed);
                    let should_run = match cell.phase.load(AtomicOrdering::Relaxed) {
                        PH_NOT_STARTED | PH_SLEEPING | PH_PARKED => {
                            cell.phase.store(PH_RUNNING, AtomicOrdering::Relaxed);
                            true
                        }
                        PH_DONE => false,
                        _ => unreachable!("rank {r} woken while running"),
                    };
                    if !should_run {
                        continue;
                    }
                    match driver.resume(r) {
                        Ok(YieldMsg::Sleep(t)) => {
                            cell.phase.store(PH_SLEEPING, AtomicOrdering::Relaxed);
                            // Engine-local: straight into the wheel, skipping
                            // the inbox (same seq counter, same order).
                            let seq = self.shared.next_seq();
                            wheel.push(t.max(handle.now()), seq, Action::WakeRank(r));
                        }
                        Ok(YieldMsg::Park) => {
                            cell.phase.store(PH_PARKED, AtomicOrdering::Relaxed);
                        }
                        Ok(YieldMsg::Done(log)) => {
                            cell.phase.store(PH_DONE, AtomicOrdering::Relaxed);
                            logs[r] = Some(log);
                        }
                        Ok(YieldMsg::Panicked(message)) => {
                            break 'main Err(SimError::RankPanic { rank: r, message });
                        }
                        Err(e) => break Err(e),
                    }
                }
            }
        };

        driver.shutdown();
        self.drain_reset();

        result?;
        let mut activity = Vec::with_capacity(n);
        for (r, log) in logs.into_iter().enumerate() {
            match log {
                Some(l) => activity.push(l),
                None => return Err(SimError::MissingRankLog { rank: r }),
            }
        }
        Ok(SimOutcome {
            end_time: handle.now(),
            activity,
            events_processed: events,
        })
    }
}

/// Oracle-driven pop: collect every entry tied at the earliest due time,
/// let the oracle pick one, and re-insert the rest (they keep their seq, so
/// the canonical order among them is restored inside the wheel).
///
/// With the [`crate::oracle::Canonical`] oracle choice `0` — the lowest
/// sequence number — is always taken, which is exactly what a plain
/// [`TimingWheel::pop`] returns, so the schedule is byte-identical to the
/// no-oracle fast path.
fn pop_with_oracle(
    wheel: &mut TimingWheel<Action>,
    orc: &OracleHandle,
) -> Option<(Time, u64, Action)> {
    let (time, seq0, a0) = wheel.pop()?;
    let mut cands = vec![(seq0, a0)];
    while let Some((_, s, a)) = wheel.pop_current() {
        cands.push((s, a));
    }
    let pick = if cands.len() > 1 {
        orc.choose(ChoicePoint::EventTie {
            time,
            n: cands.len(),
        })
    } else {
        0
    };
    let (seq, action) = cands.swap_remove(pick);
    for (s, a) in cands {
        wheel.push(time, s, a);
    }
    Some((time, seq, action))
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Silence the designed `"simulation aborted"` unwind that tears rank
/// continuations down when the engine stops early (deadlock, limit, another
/// rank's panic): it is control flow, not an error, and the default hook
/// would print one message-plus-backtrace per parked rank. Every other
/// panic still reaches the previously installed hook. Installed once,
/// process-wide, on first engine run.
fn install_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_abort = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| *s == "simulation aborted")
                .unwrap_or(false);
            if !is_abort {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::Activity;

    #[test]
    fn single_rank_computes_and_finishes() {
        let sim = Simulation::new(1);
        let out = sim
            .run(SimOpts::default(), |ctx| {
                ctx.compute(100);
                ctx.compute(50);
            })
            .unwrap();
        assert_eq!(out.end_time, 150);
        assert_eq!(out.activity[0].total(Activity::Compute), 150);
    }

    #[test]
    fn ranks_advance_independently() {
        let sim = Simulation::new(3);
        let out = sim
            .run(SimOpts::default(), |ctx| {
                let d = (ctx.rank() as u64 + 1) * 10;
                ctx.compute(d);
            })
            .unwrap();
        assert_eq!(out.end_time, 30);
        for r in 0..3 {
            assert_eq!(
                out.activity[r].total(Activity::Compute),
                (r as u64 + 1) * 10
            );
        }
    }

    #[test]
    fn callback_wakes_parked_rank() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        handle.schedule_at(500, |h| h.wake_rank(0));
        let out = sim
            .run(SimOpts::default(), |ctx| {
                ctx.park();
                assert_eq!(ctx.now(), 500);
            })
            .unwrap();
        assert_eq!(out.end_time, 500);
    }

    #[test]
    fn park_records_library_wait() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        handle.schedule_at(200, |h| h.wake_rank(0));
        let out = sim
            .run(SimOpts::default(), |ctx| {
                ctx.park();
            })
            .unwrap();
        assert_eq!(out.activity[0].total(Activity::LibraryWait), 200);
    }

    #[test]
    fn deadlock_detected() {
        let sim = Simulation::new(2);
        let err = sim
            .run(SimOpts::default(), |ctx| {
                if ctx.rank() == 0 {
                    ctx.park(); // nobody will ever wake rank 0
                }
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { parked, .. } => assert_eq!(parked, vec![0]),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn rank_panic_propagates() {
        let sim = Simulation::new(2);
        let err = sim
            .run(SimOpts::default(), |ctx| {
                if ctx.rank() == 1 {
                    panic!("boom");
                }
                ctx.compute(10);
            })
            .unwrap_err();
        match err {
            SimError::RankPanic { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("boom"));
            }
            other => panic!("expected rank panic, got {other}"),
        }
    }

    #[test]
    fn chained_callbacks_keep_time_order() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        handle.schedule_at(10, |h| {
            assert_eq!(h.now(), 10);
            h.schedule_in(5, |h2| {
                assert_eq!(h2.now(), 15);
                h2.wake_rank(0);
            });
        });
        let out = sim
            .run(SimOpts::default(), |ctx| {
                ctx.park();
                assert_eq!(ctx.now(), 15);
            })
            .unwrap();
        assert_eq!(out.end_time, 15);
    }

    #[test]
    fn event_limit_enforced() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        // Self-perpetuating callback chain.
        fn again(h: &EngineHandle) {
            h.schedule_in(1, again);
        }
        handle.schedule_at(0, again);
        let err = sim
            .run(
                SimOpts {
                    max_events: Some(100),
                    ..Default::default()
                },
                |ctx| ctx.park(),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::EventLimitExceeded { .. }));
    }

    #[test]
    fn time_limit_enforced() {
        let sim = Simulation::new(1);
        let err = sim
            .run(
                SimOpts {
                    max_time: Some(1_000),
                    ..Default::default()
                },
                |ctx| {
                    ctx.compute(10_000);
                },
            )
            .unwrap_err();
        assert!(matches!(err, SimError::TimeLimitExceeded { .. }));
    }

    #[test]
    fn wake_is_idempotent_for_parked_rank() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        handle.schedule_at(100, |h| {
            h.wake_rank(0);
            h.wake_rank(0); // duplicate wake must not break anything
        });
        let out = sim
            .run(SimOpts::default(), |ctx| {
                ctx.park();
                ctx.compute(1);
            })
            .unwrap();
        assert_eq!(out.end_time, 101);
    }

    #[test]
    fn deterministic_event_order_for_ties() {
        // Two callbacks at the same time must run in scheduling order.
        let sim = Simulation::new(1);
        let handle = sim.handle();
        let seen = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let seen = Arc::clone(&seen);
            handle.schedule_at(42, move |h| {
                seen.lock().push(i);
                if i == 4 {
                    h.wake_rank(0);
                }
            });
        }
        sim.run(SimOpts::default(), |ctx| ctx.park()).unwrap();
        assert_eq!(&*seen.lock(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn tokens_dispatch_through_handler_in_order() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        handle.set_token_handler(move |h, tok| {
            seen2.lock().push((h.now(), tok));
            if tok == 7 {
                h.wake_rank(0);
            }
        });
        handle.schedule_token(30, 7);
        handle.schedule_token(10, 3);
        handle.schedule_token(10, 4);
        sim.run(SimOpts::default(), |ctx| ctx.park()).unwrap();
        assert_eq!(&*seen.lock(), &[(10, 3), (10, 4), (30, 7)]);
    }

    #[test]
    fn tokens_and_callbacks_interleave_by_schedule_order() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        handle.set_token_handler(move |_h, tok| seen2.lock().push(tok as i64));
        let seen3 = Arc::clone(&seen);
        handle.schedule_token(5, 1);
        handle.schedule_at(5, move |h| {
            seen3.lock().push(-1);
            h.wake_rank(0);
        });
        handle.schedule_token(5, 2);
        let err = sim.run(SimOpts::default(), |ctx| ctx.park());
        // Token 2 runs after the callback that wakes rank 0; the rank then
        // finishes, so the run completes cleanly.
        err.unwrap();
        assert_eq!(&*seen.lock(), &[1, -1, 2]);
    }

    #[test]
    fn deferred_seq_tokens_keep_program_order() {
        // A token scheduled late with a pre-allocated seq must dispatch in
        // the order the seq was claimed, not the order it reached the queue.
        let sim = Simulation::new(1);
        let handle = sim.handle();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        handle.set_token_handler(move |h, tok| {
            seen2.lock().push(tok);
            if tok == 3 {
                h.wake_rank(0);
            }
        });
        let early = handle.alloc_seq(); // claimed first...
        handle.schedule_token(50, 2); // ...but inserted second
        handle.schedule_token_seq(50, early, 1);
        handle.schedule_token(50, 3);
        sim.run(SimOpts::default(), |ctx| ctx.park()).unwrap();
        assert_eq!(&*seen.lock(), &[1, 2, 3]);
    }

    fn spawn_failure_drains(runtime: RankRuntime) {
        let mut sim = Simulation::new(4);
        sim.inject_spawn_failure(2);
        let handle = sim.handle();
        let payload = Arc::new(());
        let weak = Arc::downgrade(&payload);
        handle.schedule_at(10, move |_h| {
            let _keep = &payload;
        });
        let err = sim
            .run(
                SimOpts {
                    runtime,
                    ..Default::default()
                },
                |ctx| ctx.compute(1),
            )
            .unwrap_err();
        match err {
            SimError::SpawnFailed { rank, .. } => assert_eq!(rank, 2),
            other => panic!("expected spawn failure, got {other}"),
        }
        assert!(
            weak.upgrade().is_none(),
            "pre-scheduled callback leaked through spawn-failure teardown"
        );
        // A handle that outlives the aborted run must see quiesced ranks:
        // waking one is a no-op, not a stale queue entry.
        handle.wake_rank(0);
        handle.wake_rank(3);
    }

    #[test]
    fn spawn_failure_teardown_is_drained_coroutine() {
        spawn_failure_drains(RankRuntime::Coroutine);
    }

    #[test]
    fn spawn_failure_teardown_is_drained_threads() {
        spawn_failure_drains(RankRuntime::OsThreads);
    }

    fn teardown_runs_rank_destructors(runtime: RankRuntime) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Guard(Arc<AtomicUsize>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let drops2 = Arc::clone(&drops);
        let sim = Simulation::new(3);
        let err = sim
            .run(
                SimOpts {
                    runtime,
                    ..Default::default()
                },
                move |ctx| {
                    let _guard = Guard(Arc::clone(&drops2));
                    if ctx.rank() == 2 {
                        ctx.compute(5);
                        panic!("boom");
                    }
                    ctx.park(); // never woken; torn down by the panic
                },
            )
            .unwrap_err();
        assert!(matches!(err, SimError::RankPanic { rank: 2, .. }));
        assert_eq!(
            drops.load(Ordering::SeqCst),
            3,
            "every rank's stack-held guard must be dropped on teardown"
        );
    }

    #[test]
    fn teardown_runs_rank_destructors_coroutine() {
        teardown_runs_rank_destructors(RankRuntime::Coroutine);
    }

    #[test]
    fn teardown_runs_rank_destructors_threads() {
        teardown_runs_rank_destructors(RankRuntime::OsThreads);
    }

    #[test]
    fn runtimes_agree_on_mixed_workload() {
        fn run_with(runtime: RankRuntime) -> (Time, u64, String) {
            let sim = Simulation::new(4);
            let handle = sim.handle();
            let seen = Arc::new(Mutex::new(Vec::new()));
            let seen2 = Arc::clone(&seen);
            handle.set_token_handler(move |h, tok| {
                seen2.lock().push(tok);
                h.wake_rank((tok % 4) as usize);
            });
            for i in 0..8 {
                handle.schedule_token(100 + 40 * i, i);
            }
            let out = sim
                .run(
                    SimOpts {
                        runtime,
                        ..Default::default()
                    },
                    |ctx| {
                        for _ in 0..2 {
                            ctx.compute(10 * (ctx.rank() as u64 + 1));
                            ctx.park();
                        }
                    },
                )
                .unwrap();
            let tokens = seen.lock().clone();
            (
                out.end_time,
                out.events_processed,
                format!("{:?} {:?}", out.activity, tokens),
            )
        }
        assert_eq!(
            run_with(RankRuntime::Coroutine),
            run_with(RankRuntime::OsThreads)
        );
    }
}
