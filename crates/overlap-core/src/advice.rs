//! Interpretation of the derived measures (paper Sec. 2.3).
//!
//! The bounds are only useful if a developer can act on them. This module
//! encodes the paper's interpretation guidance as an analyzer: given a
//! per-process [`OverlapReport`], it emits findings that point at the
//! message populations costing the most un-overlapped communication time and
//! at the protocol signatures behind them (blocking call patterns, progress
//! starvation, buffered-send headroom).

use serde::{Deserialize, Serialize};

use crate::report::OverlapReport;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational observation.
    Info,
    /// Worth investigating.
    Notice,
    /// A significant performance opportunity.
    Warning,
}

/// One diagnostic finding derived from a report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Finding {
    /// How loud to be.
    pub severity: Severity,
    /// Stable identifier of the rule that fired.
    pub rule: &'static str,
    /// Human-readable explanation with the relevant numbers.
    pub message: String,
}

/// Analyzer thresholds.
#[derive(Debug, Clone)]
pub struct AdviceOpts {
    /// Fraction of elapsed time above which non-overlapped communication is
    /// flagged as a major cost.
    pub major_cost_fraction: f64,
    /// Overlap-percentage gap (max − min) above which the estimate is
    /// called too loose to act on.
    pub loose_bounds_gap: f64,
    /// Minimum transfers in a bin before it is reported.
    pub min_bin_transfers: u64,
}

impl Default for AdviceOpts {
    fn default() -> Self {
        AdviceOpts {
            major_cost_fraction: 0.10,
            loose_bounds_gap: 40.0,
            min_bin_transfers: 3,
        }
    }
}

fn pct_of(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Analyze a report and return findings, most severe first.
pub fn analyze(report: &OverlapReport, opts: &AdviceOpts) -> Vec<Finding> {
    let mut findings = Vec::new();
    let t = &report.total;
    if t.transfers == 0 {
        findings.push(Finding {
            severity: Severity::Info,
            rule: "no-transfers",
            message: "no data transfers were observed; nothing to analyze".into(),
        });
        return findings;
    }

    // Paper Sec. 2.3 measure 1: data_transfer_time − max_overlap is a hard
    // floor on communication that was NOT hidden.
    let non_overlapped = t.nonoverlapped_min();
    let frac = non_overlapped as f64 / report.elapsed.max(1) as f64;
    if frac > opts.major_cost_fraction {
        findings.push(Finding {
            severity: Severity::Warning,
            rule: "non-overlapped-major-cost",
            message: format!(
                "at least {:.2} ms of communication ({:.0}% of elapsed time) was provably \
                 not overlapped with computation",
                non_overlapped as f64 / 1e6,
                frac * 100.0
            ),
        });
    }

    // Which message-size population hurts most?
    if let Some((label, bin)) = report
        .bin_labels
        .iter()
        .zip(&report.by_bin)
        .filter(|(_, b)| b.transfers >= opts.min_bin_transfers)
        .max_by_key(|(_, b)| b.nonoverlapped_min())
    {
        if bin.nonoverlapped_min() > 0 {
            findings.push(Finding {
                severity: Severity::Notice,
                rule: "worst-size-bin",
                message: format!(
                    "messages of size {} account for the largest non-overlapped share: \
                     {:.2} ms across {} transfers (overlap {:.0}–{:.0}%)",
                    label,
                    bin.nonoverlapped_min() as f64 / 1e6,
                    bin.transfers,
                    bin.min_pct(),
                    bin.max_pct()
                ),
            });
        }
    }

    // Case-1 dominance: initiation and completion inside single calls means
    // blocking call structure — no overlap is even attempted.
    if pct_of(t.case_same_call, t.transfers) > 50.0 {
        findings.push(Finding {
            severity: Severity::Warning,
            rule: "blocking-call-structure",
            message: format!(
                "{} of {} transfers began and completed inside one library call; the call \
                 structure never exposes an overlap window (consider non-blocking \
                 initiation with deferred waits)",
                t.case_same_call, t.transfers
            ),
        });
    }

    // Progress starvation signature: split-call transfers whose max bound is
    // healthy but min is ~zero — the window existed but the library could
    // not prove any progress happened during it (the paper's SP case; fixed
    // by driving the progress engine, e.g. MPI_Iprobe).
    if t.case_split_calls > 0 && t.max_pct() - t.min_pct() > opts.loose_bounds_gap {
        findings.push(Finding {
            severity: Severity::Notice,
            rule: "progress-starvation-suspected",
            message: format!(
                "overlap bounds are far apart (min {:.0}%, max {:.0}%): the computation \
                 windows exist but transfers may not progress during them; invoking the \
                 progress engine inside computation (e.g. sprinkled MPI_Iprobe) may \
                 realize the overlap",
                t.min_pct(),
                t.max_pct()
            ),
        });
    }

    // Healthy case: proven overlap.
    if t.min_pct() > 80.0 {
        findings.push(Finding {
            severity: Severity::Info,
            rule: "proven-overlap",
            message: format!(
                "at least {:.0}% of transfer time is proven overlapped — {:.2} ms of \
                 communication cost hidden",
                t.min_pct(),
                t.min_overlap as f64 / 1e6
            ),
        });
    }

    // Per-section drill-down: sections markedly worse than the whole run.
    for (name, sec) in &report.sections {
        if sec.total.transfers >= opts.min_bin_transfers && sec.total.max_pct() + 20.0 < t.max_pct()
        {
            findings.push(Finding {
                severity: Severity::Notice,
                rule: "section-below-baseline",
                message: format!(
                    "section '{name}' overlaps at most {:.0}% vs {:.0}% overall — a \
                     targeted tuning candidate",
                    sec.total.max_pct(),
                    t.max_pct()
                ),
            });
        }
    }

    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    findings
}

/// Render findings as a bulleted text block.
pub fn render(findings: &[Finding]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for f in findings {
        let tag = match f.severity {
            Severity::Warning => "WARN",
            Severity::Notice => "note",
            Severity::Info => "info",
        };
        let _ = writeln!(s, "[{tag}] ({}) {}", f.rule, f.message);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::OverlapBounds;
    use crate::report::{OverlapStats as Stats, SectionReport};

    fn base_report() -> OverlapReport {
        OverlapReport {
            rank: 0,
            elapsed: 100_000_000,
            user_compute_time: 80_000_000,
            comm_call_time: 20_000_000,
            total: Stats::default(),
            bin_labels: vec!["<1K".into(), ">=1K".into()],
            by_bin: vec![Stats::default(), Stats::default()],
            sections: Default::default(),
            calls: Default::default(),
            events_recorded: 0,
            queue_flushes: 0,
            anomalies: Default::default(),
            metrics: Default::default(),
        }
    }

    fn add(stats: &mut Stats, n: u64, xfer: u64, b: OverlapBounds) {
        for _ in 0..n {
            stats.add_bounds(100, xfer, b);
        }
    }

    #[test]
    fn empty_report_yields_no_transfers_info() {
        let f = analyze(&base_report(), &AdviceOpts::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-transfers");
    }

    #[test]
    fn blocking_structure_flagged() {
        let mut r = base_report();
        add(&mut r.total, 10, 3_000_000, OverlapBounds::same_call());
        add(&mut r.by_bin[1], 10, 3_000_000, OverlapBounds::same_call());
        let f = analyze(&r, &AdviceOpts::default());
        assert!(f.iter().any(|x| x.rule == "blocking-call-structure"));
        assert!(f.iter().any(|x| x.rule == "non-overlapped-major-cost"));
        // Most severe first.
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn progress_starvation_signature() {
        let mut r = base_report();
        // Window existed (max high) but min ~0: case-2 with big noncomp.
        let b = OverlapBounds::split_calls(1_000_000, 2_000_000, 1_000_000);
        assert_eq!(b.min, 0);
        assert_eq!(b.max, 1_000_000);
        add(&mut r.total, 5, 1_000_000, b);
        add(&mut r.by_bin[1], 5, 1_000_000, b);
        let f = analyze(&r, &AdviceOpts::default());
        assert!(f.iter().any(|x| x.rule == "progress-starvation-suspected"));
    }

    #[test]
    fn proven_overlap_reported() {
        let mut r = base_report();
        let b = OverlapBounds::split_calls(1_000_000, 5_000_000, 10_000);
        add(&mut r.total, 5, 1_000_000, b);
        add(&mut r.by_bin[0], 5, 1_000_000, b);
        let f = analyze(&r, &AdviceOpts::default());
        assert!(f.iter().any(|x| x.rule == "proven-overlap"));
        assert!(!f.iter().any(|x| x.rule == "blocking-call-structure"));
    }

    #[test]
    fn lagging_section_flagged() {
        let mut r = base_report();
        let good = OverlapBounds::split_calls(1_000_000, 5_000_000, 10_000);
        add(&mut r.total, 20, 1_000_000, good);
        add(&mut r.by_bin[0], 20, 1_000_000, good);
        let mut sec = SectionReport::default();
        add(&mut sec.total, 5, 1_000_000, OverlapBounds::same_call());
        r.sections.insert("copy_faces".into(), sec);
        let f = analyze(&r, &AdviceOpts::default());
        let hit = f
            .iter()
            .find(|x| x.rule == "section-below-baseline")
            .unwrap();
        assert!(hit.message.contains("copy_faces"));
    }

    #[test]
    fn render_includes_rules() {
        let f = vec![Finding {
            severity: Severity::Warning,
            rule: "test-rule",
            message: "hello".into(),
        }];
        let text = render(&f);
        assert!(text.contains("[WARN]"));
        assert!(text.contains("test-rule"));
    }

    #[test]
    fn worst_bin_selects_largest_nonoverlap() {
        let mut r = base_report();
        let bad = OverlapBounds::same_call();
        let good = OverlapBounds::split_calls(1_000, 100_000, 10);
        add(&mut r.total, 6, 2_000_000, bad);
        add(&mut r.total, 6, 1_000, good);
        add(&mut r.by_bin[0], 6, 1_000, good);
        add(&mut r.by_bin[1], 6, 2_000_000, bad);
        let f = analyze(&r, &AdviceOpts::default());
        let hit = f.iter().find(|x| x.rule == "worst-size-bin").unwrap();
        assert!(hit.message.contains(">=1K"), "{}", hit.message);
    }
}
