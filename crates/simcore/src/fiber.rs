//! Stackful run-to-completion coroutines for rank execution.
//!
//! Each simulated rank runs as a *fiber*: an ordinary imperative closure on
//! its own call stack, suspended and resumed by swapping stack pointers. A
//! park/wake handoff is therefore two userspace register swaps (~tens of
//! nanoseconds) instead of the futex round-trip and kernel context switch a
//! thread-per-rank design pays. The engine drives every fiber from its own
//! run-loop thread, so the simulation stays literally single-threaded: no
//! locks, no channels, no cross-core cache traffic on the yield path.
//!
//! # Mechanics
//!
//! * Stacks are `mmap`ed with a `PROT_NONE` guard page at the low end, so a
//!   rank body that overruns its stack faults loudly instead of silently
//!   corrupting the heap. Released stacks park in a process-global pool and
//!   are reused by later simulations — steady-state runs allocate no stack
//!   memory at all.
//! * The context switch saves the sysv64 callee-saved registers plus the
//!   stack pointer and restores the peer's; everything else is handled by
//!   the compiler around the `extern` call boundary.
//! * A fiber's entry point wraps the rank body in [`catch_unwind`], so a
//!   panic (including the engine's designed `"simulation aborted"` teardown
//!   unwind) never crosses the switch boundary: it is converted into a
//!   [`YieldMsg::Panicked`] handoff and the fiber parks itself as finished.
//! * Communication with the engine goes through the fiber's [`FiberData`]
//!   cell: the fiber writes a [`YieldMsg`] and switches out; the engine
//!   reads it after the switch returns. Exactly one side runs at a time, so
//!   the cell needs no synchronization.
//!
//! This module is x86_64-Linux-only (see the `cfg` in `lib.rs`); on other
//! targets the engine falls back to the OS-thread driver, which is also kept
//! as the reference model for the runtime-equivalence property tests.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::engine::YieldMsg;

/// Default fiber stack size (including the one-page guard). Virtual memory
/// only — pages are committed on first touch, so a 4k-rank fleet does not
/// pay 4k × stack in RSS. Override with `SIMCORE_FIBER_STACK_KB`.
const DEFAULT_STACK_BYTES: usize = 2 * 1024 * 1024;

const PAGE: usize = 4096;

mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_NONE: c_int = 0;
    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_PRIVATE: c_int = 0x2;
    pub const MAP_ANONYMOUS: c_int = 0x20;
    pub const MAP_STACK: c_int = 0x20000;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn mprotect(addr: *mut c_void, len: usize, prot: c_int) -> c_int;
    }
}

/// Stack size from `SIMCORE_FIBER_STACK_KB` (clamped to ≥ 64 KiB), read once.
fn stack_bytes() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        std::env::var("SIMCORE_FIBER_STACK_KB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|kb| (kb * 1024).max(64 * 1024))
            .unwrap_or(DEFAULT_STACK_BYTES)
            .next_multiple_of(PAGE)
    })
}

/// An owned `mmap`ed stack with a guard page at its low end.
struct RawStack {
    base: *mut u8,
    len: usize,
}

// SAFETY: a `RawStack` is just an owned memory range; the pool moves it
// between threads while no fiber is running on it.
unsafe impl Send for RawStack {}

impl RawStack {
    fn alloc(len: usize) -> std::io::Result<RawStack> {
        // SAFETY: plain anonymous mapping; error-checked below.
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS | sys::MAP_STACK,
                -1,
                0,
            )
        };
        if base as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        // SAFETY: `base..base+PAGE` is inside the fresh mapping.
        if unsafe { sys::mprotect(base, PAGE, sys::PROT_NONE) } != 0 {
            let err = std::io::Error::last_os_error();
            unsafe { sys::munmap(base, len) };
            return Err(err);
        }
        Ok(RawStack {
            base: base as *mut u8,
            len,
        })
    }

    fn top(&self) -> *mut u8 {
        // SAFETY: one-past-the-end pointer of the mapping.
        unsafe { self.base.add(self.len) }
    }
}

impl Drop for RawStack {
    fn drop(&mut self) {
        // SAFETY: `base/len` came from a successful mmap we own.
        unsafe { sys::munmap(self.base as *mut _, self.len) };
    }
}

/// Process-global pool of released stacks ("the fiber arena"): bounded so a
/// one-off huge fleet cannot pin memory forever.
static STACK_POOL: Mutex<Vec<RawStack>> = Mutex::new(Vec::new());
const POOL_CAP: usize = 1024;

fn acquire_stack() -> std::io::Result<RawStack> {
    let want = stack_bytes();
    if let Some(s) = STACK_POOL.lock().pop() {
        debug_assert_eq!(s.len, want);
        return Ok(s);
    }
    RawStack::alloc(want)
}

fn release_stack(s: RawStack) {
    let mut pool = STACK_POOL.lock();
    if pool.len() < POOL_CAP && s.len == stack_bytes() {
        pool.push(s);
    }
}

/// Shared cell between a fiber and the engine. Exactly one of the two sides
/// executes at any instant (strict handoff via [`raw_switch`]), so plain
/// fields suffice. Heap-allocated so its address is stable: the fiber's
/// `RankCtx` holds a raw pointer to it.
pub(crate) struct FiberData {
    /// Engine-side saved stack pointer (valid while the fiber runs).
    engine_sp: usize,
    /// Fiber-side saved stack pointer (valid while the fiber is suspended).
    fiber_sp: usize,
    /// Handoff slot: written by the fiber before switching to the engine.
    pub(crate) msg: Option<YieldMsg>,
    /// Set by the engine before an abort-resume: the fiber's next yield
    /// turns into the designed `"simulation aborted"` teardown unwind.
    pub(crate) abort: bool,
    /// The rank body, consumed on first entry.
    entry: Option<Box<dyn FnOnce(*mut FiberData)>>,
    started: bool,
    finished: bool,
}

/// One rank coroutine: data cell plus its stack.
pub(crate) struct Fiber {
    data: *mut FiberData,
    stack: RawStack,
}

impl Fiber {
    /// Create a suspended fiber that will run `entry` (with a pointer to its
    /// own data cell) on first [`Fiber::resume`]. Fails only if no stack can
    /// be mapped.
    pub(crate) fn new(entry: Box<dyn FnOnce(*mut FiberData)>) -> std::io::Result<Fiber> {
        let stack = acquire_stack()?;
        let data = Box::into_raw(Box::new(FiberData {
            engine_sp: 0,
            fiber_sp: 0,
            msg: None,
            abort: false,
            entry: Some(entry),
            started: false,
            finished: false,
        }));
        // Seed the stack so the first switch "returns" into the trampoline:
        // [a] = trampoline address (consumed by `ret`), below it the six
        // callee-saved register slots popped by `raw_switch`, with the data
        // pointer parked in the r12 slot. `a` is chosen 8 below a 16-byte
        // boundary so the trampoline entered via `ret` sees a 16-aligned
        // rsp, and its `call` then establishes the sysv64 entry alignment.
        unsafe {
            let top = stack.top() as usize;
            let a = ((top & !15) - 8) as *mut u64;
            a.write(fiber_trampoline as *const () as usize as u64);
            // Slots (descending): rbp, rbx, r12, r13, r14, r15.
            a.sub(1).write(0); // rbp
            a.sub(2).write(0); // rbx
            a.sub(3).write(data as u64); // r12 -> trampoline arg
            a.sub(4).write(0); // r13
            a.sub(5).write(0); // r14
            a.sub(6).write(0); // r15
            (*data).fiber_sp = a.sub(6) as usize;
        }
        Ok(Fiber { data, stack })
    }

    /// True once the rank body has returned or panicked.
    #[cfg(test)]
    fn is_finished(&self) -> bool {
        // SAFETY: the fiber is suspended (engine side runs), sole access.
        unsafe { (*self.data).finished }
    }

    /// Switch into the fiber until it yields or finishes; returns the
    /// message it left in the handoff slot.
    pub(crate) fn resume(&mut self) -> Option<YieldMsg> {
        // SAFETY: the cell is ours while the fiber is suspended; the switch
        // transfers control to exactly one other continuation which switches
        // back here before the engine continues.
        unsafe {
            debug_assert!(!(*self.data).finished, "resume of finished fiber");
            (*self.data).started = true;
            raw_switch(
                &mut (*self.data).engine_sp,
                std::ptr::addr_of!((*self.data).fiber_sp),
            );
            (*self.data).msg.take()
        }
    }

    /// Force a started-but-unfinished fiber to completion by resuming it
    /// with the abort flag set: its next yield unwinds the rank body (so
    /// destructors on the fiber stack run), the unwind is caught at the
    /// entry point, and the fiber finishes. No-op for new/finished fibers.
    pub(crate) fn abort(&mut self) {
        // SAFETY: engine side runs; sole access to the cell.
        unsafe {
            if !(*self.data).started || (*self.data).finished {
                return;
            }
            (*self.data).abort = true;
            self.resume();
            debug_assert!((*self.data).finished, "aborted fiber failed to finish");
        }
    }
}

impl Drop for Fiber {
    fn drop(&mut self) {
        // A live suspended body would leak its stack frames (and skip its
        // destructors) if we just unmapped the stack underneath it.
        self.abort();
        // SAFETY: `data` came from `Box::into_raw` in `new`; the fiber is
        // finished (or never started), so nothing aliases it.
        unsafe { drop(Box::from_raw(self.data)) };
        release_stack(std::mem::replace(
            &mut self.stack,
            RawStack {
                base: std::ptr::null_mut(),
                len: 0,
            },
        ));
    }
}

/// Yield from inside a fiber back to the engine (called by `RankCtx` through
/// its data-cell pointer). The message must already be in `data.msg`.
///
/// # Safety
///
/// Must be called on the fiber whose cell `data` is, i.e. from code running
/// on that fiber's stack after the engine resumed it.
pub(crate) unsafe fn yield_to_engine(data: *mut FiberData) {
    // SAFETY: per contract we are the running fiber; the engine side is
    // suspended inside `resume`, which owns the matching `engine_sp`.
    unsafe {
        raw_switch(&mut (*data).fiber_sp, std::ptr::addr_of!((*data).engine_sp));
    }
}

/// First instructions ever executed on a fiber stack. Entered via `ret` with
/// the data-cell pointer parked in `r12` by [`Fiber::new`]'s stack seeding.
#[unsafe(naked)]
unsafe extern "sysv64" fn fiber_trampoline() {
    core::arch::naked_asm!(
        "mov rdi, r12",
        "call {entry}",
        // `fiber_entry` never returns; make any miscompile loudly fatal.
        "ud2",
        entry = sym fiber_entry,
    )
}

/// Rust-level fiber main: run the rank body under `catch_unwind`, convert a
/// panic into a `Panicked` handoff, then park forever as finished. The final
/// switch hands control back to the engine and this frame is never resumed.
unsafe extern "sysv64" fn fiber_entry(data: *mut FiberData) {
    // SAFETY: the engine seeded `entry` and is suspended in `resume`.
    let entry = unsafe { (*data).entry.take().expect("fiber entered twice") };
    let result = catch_unwind(AssertUnwindSafe(move || entry(data)));
    if let Err(payload) = result {
        let msg = crate::engine::panic_message(payload.as_ref());
        // SAFETY: sole runner of this cell until the switch below.
        unsafe { (*data).msg = Some(YieldMsg::Panicked(msg)) };
    }
    unsafe { (*data).finished = true };
    loop {
        // SAFETY: switching back to the engine, which never resumes a
        // finished fiber (the loop is belt-and-braces).
        unsafe { yield_to_engine(data) };
    }
}

/// The context switch: save the callee-saved sysv64 registers and the stack
/// pointer into `*save`, then restore `*restore` and return on that stack.
/// Caller-saved registers are spilled by the compiler around the call.
#[unsafe(naked)]
unsafe extern "sysv64" fn raw_switch(save: *mut usize, restore: *const usize) {
    core::arch::naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fiber_runs_yields_and_finishes() {
        let mut f = Fiber::new(Box::new(|data| {
            for i in 0..3u64 {
                // SAFETY: running on the fiber; strict handoff.
                unsafe {
                    (*data).msg = Some(YieldMsg::Sleep(i));
                    yield_to_engine(data);
                }
            }
        }))
        .unwrap();
        for i in 0..3u64 {
            match f.resume() {
                Some(YieldMsg::Sleep(t)) => assert_eq!(t, i),
                other => panic!("unexpected yield {other:?}"),
            }
            assert!(!f.is_finished());
        }
        assert!(f.resume().is_none());
        assert!(f.is_finished());
    }

    #[test]
    fn fiber_panic_is_contained() {
        let mut f = Fiber::new(Box::new(|_| panic!("kaboom"))).unwrap();
        match f.resume() {
            Some(YieldMsg::Panicked(m)) => assert!(m.contains("kaboom")),
            other => panic!("unexpected yield {other:?}"),
        }
        assert!(f.is_finished());
    }

    #[test]
    fn abort_runs_destructors_on_fiber_stack() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        struct Flag(Arc<AtomicBool>);
        impl Drop for Flag {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(AtomicBool::new(false));
        let flag = Flag(Arc::clone(&dropped));
        let mut f = Fiber::new(Box::new(move |data| {
            let _guard = flag;
            loop {
                // SAFETY: running on the fiber; strict handoff.
                unsafe {
                    (*data).msg = Some(YieldMsg::Park);
                    yield_to_engine(data);
                    if (*data).abort {
                        panic!("simulation aborted");
                    }
                }
            }
        }))
        .unwrap();
        assert!(matches!(f.resume(), Some(YieldMsg::Park)));
        assert!(!dropped.load(std::sync::atomic::Ordering::SeqCst));
        f.abort();
        assert!(dropped.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn stacks_are_pooled_across_fibers() {
        let f = Fiber::new(Box::new(|_| {})).unwrap();
        let base = f.stack.base as usize;
        drop(f); // body never started: dropped without running
        let f2 = Fiber::new(Box::new(|_| {})).unwrap();
        assert_eq!(f2.stack.base as usize, base, "stack not reused from pool");
    }

    #[test]
    fn deep_call_stacks_fit() {
        fn recurse(n: usize) -> usize {
            let pad = [n; 16]; // keep frames honest
            if n == 0 {
                pad[0]
            } else {
                recurse(n - 1) + pad[15].min(1)
            }
        }
        let mut f = Fiber::new(Box::new(|data| {
            let depth = recurse(2000);
            // SAFETY: running on the fiber; strict handoff.
            unsafe {
                (*data).msg = Some(YieldMsg::Sleep(depth as u64));
                yield_to_engine(data);
            }
        }))
        .unwrap();
        assert!(matches!(f.resume(), Some(YieldMsg::Sleep(2000))));
    }
}
