//! Cross-crate validation: the instrumentation's min/max bounds must
//! bracket the simulator's ground-truth overlap for every rank, across
//! protocols, libraries, and randomized workloads.
//!
//! Invariants (derivation in `DESIGN.md`):
//! * `min_overlap <= true_overlap` — unconditional in this model,
//! * `true_overlap <= max_overlap + congestion_excess(rank)` — the upper
//!   bound loosens only by however much DMA queueing stretched physical
//!   durations past the idle-fabric a-priori table.

use overlap_suite::prelude::*;

fn validate(out: &MpiRunOutcome, net: &NetConfig) {
    let table = default_xfer_table(net);
    for rank in 0..out.reports.len() {
        let r = &out.reports[rank].total;
        let truth = out.true_overlap(rank);
        let slack = out.congestion_excess(rank, &table);
        assert!(
            r.min_overlap <= truth,
            "rank {rank}: min {} > truth {}",
            r.min_overlap,
            truth
        );
        assert!(
            truth <= r.max_overlap + slack,
            "rank {rank}: truth {} > max {} + slack {}",
            truth,
            r.max_overlap,
            slack
        );
        assert!(r.min_overlap <= r.max_overlap);
        assert!(r.max_overlap <= r.data_transfer_time);
    }
}

#[test]
fn bounds_hold_for_all_nas_benchmarks() {
    use nasbench::runner::{run_benchmark, NasBenchmark, RunArtifacts};
    let net = NetConfig::default();
    for bench in [
        NasBenchmark::Bt,
        NasBenchmark::Cg,
        NasBenchmark::Lu,
        NasBenchmark::Ft,
        NasBenchmark::Sp,
        NasBenchmark::SpModified,
        NasBenchmark::MgMpi,
        NasBenchmark::Ep,
        NasBenchmark::Is,
    ] {
        let art = run_benchmark(bench, Class::S, 4, net.clone(), RecorderOpts::default());
        if let RunArtifacts::Mpi(out) = art {
            validate(&out, &net);
        }
    }
}

#[test]
fn bounds_hold_for_armci_workloads() {
    let net = NetConfig::default();
    let out = run_armci(4, net.clone(), RecorderOpts::default(), |a| {
        let mem = a.malloc(1 << 20);
        a.barrier();
        let next = (a.rank() + 1) % a.nranks();
        for k in 0..10 {
            let h = a.nb_put(&mem, next, 0, &vec![k as u8; 256 << 10]);
            a.compute(us(300));
            a.wait(h);
            let g = a.nb_get(&mem, next, 0, 64 << 10);
            a.compute(us(100));
            a.wait(g);
        }
        a.barrier();
    })
    .unwrap();
    let table = default_xfer_table(&net);
    for rank in 0..out.reports.len() {
        let r = &out.reports[rank].total;
        // One-sided truth counts only transfers this rank initiated: the
        // passive target's library sees nothing (see simarmci::harness).
        let truth = out.true_overlap(rank);
        let slack = out.congestion_excess(rank, &table);
        assert!(r.min_overlap <= truth, "rank {rank}: min exceeds truth");
        assert!(
            truth <= r.max_overlap + slack,
            "rank {rank}: truth exceeds max+slack"
        );
    }
}

#[test]
fn bounds_hold_under_heavy_random_traffic() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let net = NetConfig::default();
    for seed in 0..4u64 {
        for cfg in [
            MpiConfig::open_mpi_pipelined(),
            MpiConfig::open_mpi_leave_pinned(),
            MpiConfig::mvapich2(),
        ] {
            let out = run_mpi(4, net.clone(), cfg, RecorderOpts::default(), move |mpi| {
                // All ranks execute the same schedule derived from a
                // shared seed: ring exchanges with random sizes/compute.
                let mut rng = StdRng::seed_from_u64(seed);
                let n = mpi.nranks();
                let me = mpi.rank();
                for round in 0..12u64 {
                    let bytes = [64usize, 2 << 10, 10 << 10, 40 << 10, 200 << 10, 700 << 10]
                        [rng.gen_range(0..6)];
                    let compute = rng.gen_range(0..2_000_000u64);
                    let right = (me + 1) % n;
                    let left = (me + n - 1) % n;
                    let s = mpi.isend(right, round, &vec![me as u8; bytes]);
                    let r = mpi.irecv(Src::Rank(left), TagSel::Is(round));
                    mpi.compute(compute);
                    if rng.gen_bool(0.5) {
                        mpi.iprobe(Src::Any, TagSel::Any);
                        mpi.compute(compute / 2);
                    }
                    mpi.wait(s);
                    mpi.wait(r);
                    if round % 4 == 3 {
                        mpi.allreduce(&[1.0], ReduceOp::Sum);
                    }
                }
            })
            .unwrap();
            validate(&out, &net);
        }
    }
}

#[test]
fn bounds_hold_on_a_faster_fabric() {
    let net = NetConfig::fast_fabric();
    let out = run_mpi(
        2,
        net.clone(),
        MpiConfig::mvapich2(),
        RecorderOpts::default(),
        |mpi| {
            for i in 0..20 {
                if mpi.rank() == 0 {
                    let r = mpi.isend(1, i, &vec![1u8; 1 << 20]);
                    mpi.compute(us(400));
                    mpi.wait(r);
                } else {
                    let r = mpi.irecv(Src::Rank(0), TagSel::Is(i));
                    mpi.compute(us(150));
                    mpi.iprobe(Src::Any, TagSel::Any);
                    mpi.compute(us(150));
                    mpi.wait(r);
                }
            }
        },
    )
    .unwrap();
    validate(&out, &net);
}

#[test]
fn per_rank_time_accounting_is_exact() {
    let out = run_mpi(
        3,
        NetConfig::default(),
        MpiConfig::default(),
        RecorderOpts::default(),
        |mpi| {
            for i in 0..5 {
                let next = (mpi.rank() + 1) % mpi.nranks();
                let prev = (mpi.rank() + mpi.nranks() - 1) % mpi.nranks();
                let s = mpi.isend(next, i, &[3u8; 4096]);
                let r = mpi.irecv(Src::Rank(prev), TagSel::Is(i));
                mpi.compute(us(50));
                mpi.waitall(&[s, r]);
            }
        },
    )
    .unwrap();
    for r in &out.reports {
        assert_eq!(r.user_compute_time + r.comm_call_time, r.elapsed);
        // Instrumented compute must match ground truth exactly: the recorder
        // sees every boundary because all time passes through the library or
        // `compute`.
        assert_eq!(
            r.user_compute_time,
            out.activity[r.rank].total(simcore::Activity::Compute),
            "rank {}",
            r.rank
        );
    }
}
