//! Schedule-space explorer integration tests (ISSUE acceptance criteria):
//!
//! * the bounded-exhaustive strategy fully enumerates the 2-rank eager
//!   exchange's schedule space with zero invariant violations,
//! * the planted deadlock scenario is found on every schedule, shrunk to a
//!   minimal divergent prefix, and the written counterexample token
//!   replays the deadlock deterministically,
//! * replay refuses tokens whose schema version or fault seed no longer
//!   match the current configuration.

use bench::explore::{self, Counterexample, Outcome};
use simcore::{RandomOracle, ReplayOracle};

#[test]
fn exhaustive_eager2_enumerates_bounded_space_cleanly() {
    let sc = explore::find_scenario("eager2").expect("eager2 registered");
    let stats = explore::explore_exhaustive(&sc, 10_000, 1);
    assert!(
        stats.complete,
        "bounded space not enumerated within budget ({} schedules)",
        stats.schedules
    );
    assert!(
        stats.schedules > 10,
        "suspiciously small schedule space: {}",
        stats.schedules
    );
    assert_eq!(
        stats.clean, stats.schedules,
        "some schedules were not clean"
    );
    assert_eq!(stats.violations, 0);
    assert_eq!(stats.deadlocks, 0);
    assert_eq!(stats.errors, 0);
}

#[test]
fn random_schedules_replay_byte_deterministically() {
    let sc = explore::find_scenario("fig03ish").expect("fig03ish registered");
    let original = explore::run_schedule(&sc, Box::new(RandomOracle::new(23)));
    assert_eq!(original.outcome.category(), "clean");
    assert!(
        !original.choices.is_empty(),
        "jittered scenario should hit choice points"
    );
    let replay = explore::run_schedule(&sc, Box::new(ReplayOracle::new(original.choices.clone())));
    assert_eq!(replay.outcome, original.outcome, "replay diverged");
    assert_eq!(replay.choices, original.choices, "decision trace diverged");
}

#[test]
fn deadlock_scenario_is_found_shrunk_and_replayable() {
    let sc = explore::find_scenario("deadlock").expect("deadlock registered");
    let stats = explore::explore_random(&sc, 3, 7);
    assert_eq!(stats.deadlocks, 3, "every schedule of the plant deadlocks");
    let finding = stats.first_deadlock.as_ref().expect("deadlock finding");
    assert!(
        finding.description.contains("wait-for cycle"),
        "diagnostic should carry the blocked-on cycle: {}",
        finding.description
    );

    // Token roundtrip through disk, then deterministic replay.
    let dir = std::env::temp_dir().join(format!("explore-test-{}", std::process::id()));
    let token = Counterexample::from_finding(&sc, "random", 7, finding);
    let path = token.save(&dir).expect("token written");
    assert!(path.ends_with("deadlock.counterexample.json"));
    let text = std::fs::read_to_string(&path).expect("token readable");
    let back: Counterexample = serde_json::from_str(&text).expect("token parses");
    assert_eq!(back.schema_version, explore::SCHEMA_VERSION);
    assert_eq!(back.fault_seed, sc.fault_seed);
    match back.replay().expect("replay reproduces the deadlock") {
        Outcome::Deadlock(msg) => assert!(msg.contains("wait-for cycle"), "{msg}"),
        other => panic!("replay produced {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The PR 6 `deadlock` counterexample token, pinned byte-for-byte across
/// the engine rewrite: regenerating the token from scratch (same strategy,
/// budget, and seed as `deadlock_scenario_is_found_shrunk_and_replayable`)
/// must reproduce the committed golden exactly, and the golden itself must
/// still replay to the planted deadlock. This is the explorer-level
/// equivalence witness — schedule enumeration, the recorded choice trace,
/// and the token serialization all have to survive engine swaps unchanged.
///
/// To re-bless after an *intentional* format change (never for an engine
/// change — that is exactly the drift this test exists to catch), run with
/// `EXPLORE_BLESS_GOLDEN=1`.
#[test]
fn deadlock_counterexample_token_matches_golden() {
    let sc = explore::find_scenario("deadlock").expect("deadlock registered");
    let stats = explore::explore_random(&sc, 3, 7);
    let finding = stats.first_deadlock.as_ref().expect("deadlock finding");
    let token = Counterexample::from_finding(&sc, "random", 7, finding);
    let text = serde_json::to_string_pretty(&token).expect("token serializes");

    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens/deadlock.counterexample.json");
    if std::env::var_os("EXPLORE_BLESS_GOLDEN").is_some() {
        std::fs::write(&golden_path, &text).expect("golden written");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("golden readable");
    assert_eq!(
        text, golden,
        "regenerated deadlock counterexample token diverged from \
         tests/goldens/deadlock.counterexample.json"
    );

    let back: Counterexample = serde_json::from_str(&golden).expect("golden parses");
    match back.replay().expect("golden token replays") {
        Outcome::Deadlock(msg) => assert!(msg.contains("wait-for cycle"), "{msg}"),
        other => panic!("golden replay produced {other:?}"),
    }
}

#[test]
fn shrinking_minimizes_a_random_failing_trace() {
    let sc = explore::find_scenario("deadlock").expect("deadlock registered");
    let run = explore::run_schedule(&sc, Box::new(RandomOracle::new(3)));
    assert_eq!(run.outcome.category(), "deadlock");
    assert!(!run.choices.is_empty());
    let shrunk = explore::shrink(&sc, &run.choices, "deadlock");
    // The plant deadlocks canonically, so the minimal divergent prefix is
    // empty — shrinking must discover that from a fully random trace.
    assert!(
        shrunk.len() < run.choices.len(),
        "shrinking made no progress ({} choices)",
        run.choices.len()
    );
    assert!(shrunk.is_empty(), "expected empty prefix, got {shrunk:?}");
}

/// The async-rank scenario's schedule space is dominated by kind-4
/// `ProgressWake` drain-now/defer decisions: random search must actually
/// reach them, flipping a wake must actually move the schedule (distinct
/// end times), and every explored interleaving must stay clean.
#[test]
fn asyncrank_exploration_searches_progress_wake_interleavings() {
    let sc = explore::find_scenario("asyncrank2").expect("asyncrank2 registered");
    let canonical = explore::run_schedule(&sc, Box::new(ReplayOracle::new(Vec::new())));
    assert_eq!(canonical.outcome.category(), "clean");
    assert!(
        canonical.choices.iter().any(|c| c.kind == 4),
        "async-rank canonical schedule consulted no ProgressWake points: {:?}",
        canonical.choices
    );

    let stats = explore::explore_random(&sc, 24, 5);
    assert_eq!(
        stats.clean, stats.schedules,
        "some schedules were not clean"
    );
    assert_eq!(stats.violations, 0);
    assert_eq!(stats.deadlocks, 0);
    assert_eq!(stats.errors, 0);
    assert!(
        stats.distinct_end_times > 1,
        "ProgressWake flips never moved the schedule ({} end times)",
        stats.distinct_end_times
    );
}

/// A v1 token (recorded before the `ProgressWake` choice kind existed) must
/// be refused outright, not replayed against the v2 schedule space.
#[test]
fn replay_refuses_a_version_1_token() {
    let v1 = r#"{
        "schema_version": 1,
        "scenario": "deadlock",
        "strategy": "random",
        "category": "deadlock",
        "description": "wait-for cycle",
        "fault_seed": 42,
        "oracle_seed": 7,
        "choices": []
    }"#;
    let token: Counterexample = serde_json::from_str(v1).expect("v1 token parses");
    let err = token.replay().expect_err("v1 token must be refused");
    assert!(
        err.contains("schema_version 1") && err.contains("current 2"),
        "refusal should name both versions: {err}"
    );
}

#[test]
fn replay_rejects_mismatched_schema_or_fault_seed() {
    let sc = explore::find_scenario("deadlock").expect("deadlock registered");
    let stats = explore::explore_random(&sc, 1, 7);
    let finding = stats.first_deadlock.as_ref().expect("deadlock finding");
    let token = Counterexample::from_finding(&sc, "random", 7, finding);

    let mut wrong_schema = token.clone();
    wrong_schema.schema_version += 1;
    let err = wrong_schema.replay().expect_err("schema mismatch rejected");
    assert!(err.contains("schema_version"), "{err}");

    let mut wrong_seed = token.clone();
    wrong_seed.fault_seed += 1;
    let err = wrong_seed
        .replay()
        .expect_err("fault-seed mismatch rejected");
    assert!(err.contains("configuration changed"), "{err}");
}
