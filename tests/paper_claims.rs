//! End-to-end checks of the paper's headline claims, at test-sized scale.
//! The full series live in the `bench` crate; these assertions pin the
//! *shapes* so a regression anywhere in the stack fails loudly.

use bench::micro::{overlap_sweep, Pairing};
use nasbench::runner::{run_benchmark, summarize, NasBenchmark};
use overlap_suite::prelude::*;

const REPS: usize = 40;

#[test]
fn fig3_shape_eager_full_overlap_ability() {
    let pts = overlap_sweep(
        MpiConfig::open_mpi_pipelined(),
        10 << 10,
        REPS,
        &[0, 15_000, 30_000],
        Pairing::IsendIrecv,
    );
    // Sender overlap grows to ~full.
    assert!(
        pts[2].snd_min > 90.0,
        "sender min plateau: {}",
        pts[2].snd_min
    );
    // Receiver minimum pinned at zero, maximum full (case 3 semantics).
    for p in &pts {
        assert_eq!(p.rcv_min, 0.0);
        assert!(p.rcv_max > 99.0);
    }
    // Wait time shrinks as overlap grows.
    assert!(pts[2].snd_wait_ns < pts[0].snd_wait_ns);
}

#[test]
fn fig4_vs_fig5_shape_pipelined_flat_direct_grows() {
    let computes = [250_000u64, 1_750_000];
    let pipe = overlap_sweep(
        MpiConfig::open_mpi_pipelined(),
        1 << 20,
        REPS,
        &computes,
        Pairing::IsendRecv,
    );
    let direct = overlap_sweep(
        MpiConfig::open_mpi_leave_pinned(),
        1 << 20,
        REPS,
        &computes,
        Pairing::IsendRecv,
    );
    // Pipelined: flat at the first-fragment share regardless of compute.
    assert!((pipe[0].snd_max - pipe[1].snd_max).abs() < 3.0);
    assert!((10.0..20.0).contains(&pipe[1].snd_max));
    // Direct: grows with compute, reaches ~full, wait collapses.
    assert!(direct[1].snd_min > 95.0);
    assert!(direct[1].snd_wait_ns < direct[0].snd_wait_ns / 3.0);
    // Crossover: with little compute the pipelined scheme's early fragment
    // beats direct's nothing-yet; with ample compute direct wins decisively.
    assert!(direct[1].snd_max > pipe[1].snd_max * 3.0);
}

#[test]
fn fig7_shape_direct_read_late_receiver_zero() {
    let pts = overlap_sweep(
        MpiConfig::open_mpi_leave_pinned(),
        1 << 20,
        REPS,
        &[1_000_000],
        Pairing::SendIrecv,
    );
    assert_eq!(pts[0].rcv_max, 0.0);
    assert_eq!(pts[0].rcv_min, 0.0);
}

#[test]
fn nas_ranking_matches_paper() {
    // Paper Sec. 4: LU highest, FT lowest, CG above BT.
    let run = |b| {
        let art = run_benchmark(
            b,
            Class::A,
            4,
            NetConfig::default(),
            RecorderOpts::default(),
        );
        summarize(b, Class::A, 4, &art).max_pct
    };
    let lu = run(NasBenchmark::Lu);
    let ft = run(NasBenchmark::Ft);
    let cg = run(NasBenchmark::Cg);
    let bt = run(NasBenchmark::Bt);
    assert!(
        lu > cg && cg > bt && bt > ft,
        "ranking violated: LU {lu} CG {cg} BT {bt} FT {ft}"
    );
    assert!(lu > 70.0);
    assert!(ft < 10.0);
}

#[test]
fn sp_tuning_story_holds_everywhere() {
    for (class, np) in [(Class::A, 4), (Class::A, 9), (Class::B, 4)] {
        let orig = run_benchmark(
            NasBenchmark::Sp,
            class,
            np,
            NetConfig::default(),
            RecorderOpts::default(),
        );
        let modi = run_benchmark(
            NasBenchmark::SpModified,
            class,
            np,
            NetConfig::default(),
            RecorderOpts::default(),
        );
        let o = &orig.reports()[0];
        let m = &modi.reports()[0];
        // Section overlap improves...
        let osec = &o.sections[nasbench::sp::SP_OVERLAP_SECTION];
        let msec = &m.sections[nasbench::sp::SP_OVERLAP_SECTION];
        assert!(
            msec.total.max_pct() > osec.total.max_pct() + 30.0,
            "{class}/{np}: section {} -> {}",
            osec.total.max_pct(),
            msec.total.max_pct()
        );
        // ...whole-code MPI time drops...
        assert!(
            m.comm_call_time < o.comm_call_time,
            "{class}/{np}: MPI time"
        );
        // ...but whole-code overlap stays capped by copy_faces volume.
        assert!(m.total.max_pct() < 70.0, "{class}/{np}: copy_faces cap");
    }
}

#[test]
fn fig19_story_armci_blocking_vs_nonblocking() {
    let bl = run_benchmark(
        NasBenchmark::MgArmciBlocking,
        Class::A,
        8,
        NetConfig::default(),
        RecorderOpts::default(),
    );
    let nb = run_benchmark(
        NasBenchmark::MgArmciNonBlocking,
        Class::A,
        8,
        NetConfig::default(),
        RecorderOpts::default(),
    );
    assert!(bl.reports()[0].total.max_pct() < 5.0);
    assert!(nb.reports()[0].total.max_pct() > 90.0);
    // And the non-blocking variant genuinely runs faster (the improvement
    // attributed to overlap in the paper's predecessor study [29]).
    assert!(nb.end_time() < bl.end_time());
}

#[test]
fn instrumentation_is_scalable_constant_memory() {
    // Queue flushes grow with traffic while aggregates stay exact: run the
    // same workload with a tiny and a huge ring and compare reports.
    let run_with = |capacity| {
        let rec = RecorderOpts {
            queue_capacity: capacity,
            ..Default::default()
        };
        run_mpi(2, NetConfig::default(), MpiConfig::default(), rec, |mpi| {
            for i in 0..300 {
                if mpi.rank() == 0 {
                    let r = mpi.isend(1, i, &[1u8; 2048]);
                    mpi.compute(us(20));
                    mpi.wait(r);
                } else {
                    mpi.recv(Src::Rank(0), TagSel::Is(i));
                }
            }
        })
        .unwrap()
    };
    let small = run_with(8);
    let big = run_with(1 << 16);
    assert!(small.reports[0].queue_flushes > 100);
    // The huge ring folds only once, at finalize.
    assert!(big.reports[0].queue_flushes <= 1);
    assert_eq!(small.reports[0].total, big.reports[0].total);
    assert_eq!(small.reports[1].total, big.reports[1].total);
}
