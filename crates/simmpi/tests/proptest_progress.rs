//! Differential property suite across progress models.
//!
//! For random (deadlock-free) workloads, every [`ProgressModel`] must:
//!
//! * deliver all payloads intact and deterministically (same program, same
//!   model → byte-identical outcome),
//! * keep `polling` byte-identical to a config that never mentions the
//!   progress field (the golden-pinning property, checked here differentially
//!   and against the committed goldens elsewhere),
//! * produce reports that pass every [`overlap_core::invariant`] check,
//! * reconcile wait-cause attribution *exactly* (Σ breakdown == nonoverlap)
//!   on every transfer record,
//! * on fault-free runs, achieve at least the polling model's overlap upper
//!   bound once the modeled progress-steal cost is added back
//!   (`max_overlap(model) + steal(model) ≥ max_overlap(polling)`).

use proptest::prelude::*;

use overlap_core::{attribution, invariant, RecorderOpts};
use simmpi::{run_mpi, MpiConfig, MpiRunOutcome, ProgressModel, RndvMode, Src, TagSel};
use simnet::NetConfig;

/// One round of a generated two-rank symmetric exchange (deadlock-free).
#[derive(Debug, Clone, Copy)]
struct Round {
    bytes: usize,
    compute_ns: u64,
    blocking_send: bool,
    prepost: bool,
}

fn arb_round() -> impl Strategy<Value = Round> {
    (
        prop_oneof![
            Just(16usize),
            Just(1 << 10),
            Just(10 << 10),
            Just(40 << 10),
            Just(200 << 10),
        ],
        0u64..1_200_000,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(bytes, compute_ns, blocking_send, prepost)| Round {
            bytes,
            compute_ns,
            blocking_send,
            prepost,
        })
}

fn arb_cfg() -> impl Strategy<Value = MpiConfig> {
    (
        prop_oneof![Just(RndvMode::PipelinedWrite), Just(RndvMode::DirectRead)],
        prop_oneof![Just(4usize << 10), Just(12 << 10), Just(64 << 10)],
        any::<bool>(),
    )
        .prop_map(|(rndv_mode, eager_threshold, use_reg_cache)| MpiConfig {
            rndv_mode,
            eager_threshold,
            use_reg_cache,
            ..MpiConfig::default()
        })
}

/// The four models under test.
fn all_models() -> [ProgressModel; 4] {
    [
        ProgressModel::Polling,
        ProgressModel::AsyncRank {
            poll_interval: ProgressModel::DEFAULT_POLL_INTERVAL,
        },
        ProgressModel::EarlyBird,
        ProgressModel::HwTag,
    ]
}

/// Run the symmetric exchange under `model`, tracing enabled so attribution
/// can be reconciled. Payload integrity is asserted inside the rank body.
fn run_model(rounds: &[Round], cfg: &MpiConfig, model: ProgressModel) -> MpiRunOutcome {
    let mut cfg = cfg.clone();
    cfg.progress = model;
    let rounds = rounds.to_vec();
    let rec = RecorderOpts {
        trace: true,
        ..RecorderOpts::default()
    };
    run_mpi(2, NetConfig::default(), cfg, rec, move |mpi| {
        let me = mpi.rank();
        let other = 1 - me;
        // Rank 1 receives before it sends, which keeps blocking rendezvous
        // sends safe under every model (hw-tag always needs a remote match
        // to complete a rendezvous send); rank 0's optionally-late receive
        // still exercises the unexpected-arrival path.
        for (i, r) in rounds.iter().enumerate() {
            let tag = i as u64;
            let payload = vec![(me * 37 + i) as u8; r.bytes];
            let check = |st: simmpi::Status| {
                let got = st.into_data();
                let expect = (other * 37 + i) as u8;
                // Plain asserts: a failure panics the rank, surfacing as a
                // run error (prop_assert can't cross the closure).
                assert!(got.iter().all(|&b| b == expect), "round {i} corrupted");
                assert_eq!(got.len(), r.bytes);
            };
            if me == 0 {
                let rr = if r.prepost {
                    Some(mpi.irecv(Src::Rank(other), TagSel::Is(tag)))
                } else {
                    None
                };
                if r.blocking_send {
                    mpi.send(other, tag, &payload);
                } else {
                    let sr = mpi.isend(other, tag, &payload);
                    mpi.compute(r.compute_ns / 2);
                    mpi.wait(sr);
                }
                mpi.compute(r.compute_ns);
                check(match rr {
                    Some(rr) => mpi.wait(rr),
                    // Late post: the message is unexpected here.
                    None => mpi.recv(Src::Rank(other), TagSel::Is(tag)),
                });
            } else {
                check(mpi.recv(Src::Rank(other), TagSel::Is(tag)));
                if r.blocking_send {
                    mpi.send(other, tag, &payload);
                } else {
                    let sr = mpi.isend(other, tag, &payload);
                    mpi.compute(r.compute_ns / 2);
                    mpi.wait(sr);
                }
                mpi.compute(r.compute_ns);
            }
        }
    })
    .expect("run failed")
}

/// A byte-stable fingerprint of everything a run reports.
fn fingerprint(out: &MpiRunOutcome) -> String {
    format!(
        "end={} events={} reports={:?} transfers={:?} traces={:?}",
        out.end_time, out.events_processed, out.reports, out.transfers, out.traces
    )
}

/// Σ over ranks of the time spent inside the async progress fiber's
/// `MPI_Progress` spans — the modeled steal cost (zero for every other
/// model, which never enters that call).
fn steal_ns(out: &MpiRunOutcome) -> u64 {
    out.reports
        .iter()
        .filter_map(|r| r.calls.get("MPI_Progress"))
        .map(|c| c.total_time)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) `polling` is byte-identical to a config that predates the
    /// progress field, and every model is deterministic under replay.
    #[test]
    fn models_are_deterministic_and_polling_is_inert(
        rounds in prop::collection::vec(arb_round(), 1..6),
        cfg in arb_cfg(),
    ) {
        let baseline = fingerprint(&run_model(&rounds, &cfg, ProgressModel::Polling));
        // The default config IS polling: same bytes out.
        prop_assert_eq!(
            cfg.progress, ProgressModel::Polling,
            "MpiConfig::default must keep polling as the default model"
        );
        for model in all_models() {
            let a = fingerprint(&run_model(&rounds, &cfg, model));
            let b = fingerprint(&run_model(&rounds, &cfg, model));
            prop_assert_eq!(&a, &b, "{} must be deterministic", model.label());
            if model == ProgressModel::Polling {
                prop_assert_eq!(&a, &baseline, "polling must be byte-identical");
            }
        }
    }

    /// (b) report invariants and (c) exact attribution reconciliation hold
    /// under every model.
    #[test]
    fn invariants_and_reconciliation_hold_under_every_model(
        rounds in prop::collection::vec(arb_round(), 1..6),
        cfg in arb_cfg(),
    ) {
        for model in all_models() {
            let out = run_model(&rounds, &cfg, model);
            let violations = invariant::check_reports(&out.reports);
            prop_assert!(
                violations.is_empty(),
                "{}: invariant violations: {violations:?}", model.label()
            );
            for tr in &out.traces {
                let attr = attribution::attribute(tr);
                for rec in &attr.records {
                    let sum: u64 = rec.breakdown.iter().map(|s| s.ns).sum();
                    prop_assert_eq!(
                        sum, rec.nonoverlap,
                        "{}: transfer {:?} breakdown Σ {} != nonoverlap {}",
                        model.label(), rec.id, sum, rec.nonoverlap
                    );
                }
            }
        }
    }

    /// (d) on fault-free runs, no model loses more overlap than its modeled
    /// steal cost: `Σ max_overlap(model) + steal(model) ≥ Σ max_overlap(polling)`.
    #[test]
    fn overlap_never_drops_below_polling_minus_steal(
        rounds in prop::collection::vec(arb_round(), 1..6),
        cfg in arb_cfg(),
    ) {
        let base = run_model(&rounds, &cfg, ProgressModel::Polling);
        let base_max: u64 = base.reports.iter().map(|r| r.total.max_overlap).sum();
        for model in all_models() {
            let out = run_model(&rounds, &cfg, model);
            let max: u64 = out.reports.iter().map(|r| r.total.max_overlap).sum();
            let steal = steal_ns(&out);
            prop_assert!(
                max + steal >= base_max,
                "{}: Σ max_overlap {} + steal {} < polling Σ max_overlap {}",
                model.label(), max, steal, base_max
            );
        }
    }
}
