//! A free-list slab arena for in-flight fabric work.
//!
//! Every message the fabric has accepted but not yet delivered lives in one
//! of these slabs, addressed by a dense `usize` key that doubles as the
//! engine's scheduling token. Vacated slots are chained into a free list and
//! reused, so at steady state posting a message performs **zero heap
//! allocations**: the slab's backing vector stops growing once it covers the
//! peak number of simultaneously in-flight operations.

/// A slab allocator handing out dense `usize` keys with O(1) insert/remove
/// and slot reuse via an intrusive free list.
///
/// ```
/// use simnet::arena::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.remove(a), "alpha");
/// let c = slab.insert("gamma"); // reuses slot `a`
/// assert_eq!(c, a);
/// assert_eq!(slab.len(), 2);
/// let _ = b;
/// ```
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free_head: usize,
    len: usize,
}

enum Entry<T> {
    Occupied(T),
    /// Index of the next vacant slot (`usize::MAX` terminates the list).
    Vacant(usize),
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free_head: usize::MAX,
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots allocated (occupied + reusable).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Store `value`, returning its key. Reuses a vacant slot when one
    /// exists; grows the backing vector otherwise.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        if self.free_head != usize::MAX {
            let key = self.free_head;
            match std::mem::replace(&mut self.entries[key], Entry::Occupied(value)) {
                Entry::Vacant(next) => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list pointed at an occupied slot"),
            }
            key
        } else {
            self.entries.push(Entry::Occupied(value));
            self.entries.len() - 1
        }
    }

    /// Remove and return the value at `key`, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of bounds — a token must be redeemed
    /// exactly once.
    pub fn remove(&mut self, key: usize) -> T {
        match std::mem::replace(&mut self.entries[key], Entry::Vacant(self.free_head)) {
            Entry::Occupied(value) => {
                self.free_head = key;
                self.len -= 1;
                value
            }
            Entry::Vacant(next) => {
                // Restore the list before panicking so the slab stays valid.
                self.entries[key] = Entry::Vacant(next);
                panic!("slab key {key} redeemed twice");
            }
        }
    }

    /// Borrow the value at `key`, if occupied.
    pub fn get(&self, key: usize) -> Option<&T> {
        match self.entries.get(key) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = Slab::new();
        let k1 = s.insert(10);
        let k2 = s.insert(20);
        let k3 = s.insert(30);
        assert_eq!(s.len(), 3);
        assert_eq!(s.remove(k2), 20);
        assert_eq!(s.remove(k1), 10);
        assert_eq!(s.get(k3), Some(&30));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slots_are_reused_lifo() {
        let mut s = Slab::new();
        let k1 = s.insert("a");
        let k2 = s.insert("b");
        s.remove(k1);
        s.remove(k2);
        // Most recently freed first.
        assert_eq!(s.insert("c"), k2);
        assert_eq!(s.insert("d"), k1);
        assert_eq!(s.capacity(), 2, "no growth after reuse");
    }

    #[test]
    fn capacity_tracks_peak_not_total() {
        let mut s = Slab::new();
        for round in 0..100 {
            let k = s.insert(round);
            assert!(k < 2, "steady state must reuse the same slots");
            let k2 = s.insert(round);
            s.remove(k);
            s.remove(k2);
        }
        assert_eq!(s.capacity(), 2);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "redeemed twice")]
    fn double_remove_panics() {
        let mut s = Slab::new();
        let k = s.insert(1);
        s.remove(k);
        s.remove(k);
    }
}
