//! NAS MG (multigrid), in three communication variants (paper Sec. 4.4).
//!
//! V-cycle over an `n³` grid, 3-D process decomposition. Every level visit
//! smooths/restricts/prolongates locally and exchanges ghost faces with the
//! six axis neighbors (`comm3`); face areas quarter at every coarser level,
//! so MG produces a *geometric ladder* of message sizes.
//!
//! Variants:
//! * [`MgVariant::Mpi`] — NPB 2.4-style `Irecv`/`Send`/`Wait` per axis,
//! * [`MgVariant::ArmciBlocking`] — `ARMCI_Put` per face, host-blocked,
//! * [`MgVariant::ArmciNonBlocking`] — `ARMCI_NbPut` issued for the next
//!   axis before working on the current axis's data (the optimization of
//!   Tipparaju et al. \[29\] whose overlap the paper quantifies at ~99 %).

use simarmci::Armci;
use simmpi::{Mpi, Src, TagSel};

use crate::class::Class;
use crate::grid::{grid3, neighbor3};
use crate::model::{flops_ns, MG_POINT_FLOPS};

/// Which communication system MG runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MgVariant {
    /// Two-sided message passing.
    Mpi,
    /// One-sided blocking puts.
    ArmciBlocking,
    /// One-sided non-blocking puts issued a dimension ahead.
    ArmciNonBlocking,
}

/// MG workload parameters.
#[derive(Debug, Clone)]
pub struct MgParams {
    /// Problem class (grid is `n³`).
    pub class: Class,
    /// V-cycle iterations (NPB: 4 for A, 20 for B; scaled).
    pub iterations: usize,
}

impl MgParams {
    /// MG at the given class with scaled iterations.
    pub fn new(class: Class) -> Self {
        MgParams {
            class,
            iterations: 2,
        }
    }

    /// Grid points per side.
    pub fn n(&self) -> usize {
        match self.class {
            Class::S => 32,
            Class::W => 128,
            Class::A => 256,
            Class::B => 256,
        }
    }

    /// Number of multigrid levels (down to a 4³ global grid).
    pub fn levels(&self) -> usize {
        (self.n().trailing_zeros() as usize).saturating_sub(1)
    }
}

struct MgGeometry {
    dims: (usize, usize, usize),
    /// Local block dimensions at the finest level.
    local: [usize; 3],
    levels: usize,
    point_ns_finest: u64,
}

fn geometry(np: usize, p: &MgParams) -> MgGeometry {
    let n = p.n();
    let dims = grid3(np);
    let local = [n / dims.0, n / dims.1, n / dims.2];
    let local_points = (local[0] * local[1] * local[2]) as f64;
    MgGeometry {
        dims,
        local,
        levels: p.levels(),
        point_ns_finest: flops_ns(local_points * MG_POINT_FLOPS),
    }
}

/// Face bytes along `axis` at `level` (level 0 = finest): the product of
/// the two other local dimensions, coarsened, in f64.
fn face_bytes(g: &MgGeometry, axis: usize, level: usize) -> usize {
    let shrink = 1usize << level;
    let a = (g.local[(axis + 1) % 3] / shrink).max(1);
    let b = (g.local[(axis + 2) % 3] / shrink).max(1);
    a * b * 8
}

fn level_compute_ns(g: &MgGeometry, level: usize) -> u64 {
    (g.point_ns_finest >> (3 * level)).max(1_000)
}

/// The level visit order of one V-cycle: fine → coarse → fine.
fn v_cycle(levels: usize) -> Vec<usize> {
    let down = 0..levels;
    let up = (0..levels.saturating_sub(1)).rev();
    down.chain(up).collect()
}

/// Run the MPI variant.
pub fn run_mg_mpi(mpi: &mut Mpi, p: &MgParams) {
    let g = geometry(mpi.nranks(), p);
    let me = mpi.rank();
    for iter in 0..p.iterations {
        for (visit, level) in v_cycle(g.levels).into_iter().enumerate() {
            let tag_base = ((iter * 1000 + visit) as u64) << 16;
            // comm3: exchange both faces along each axis, then smooth.
            for axis in 0..3 {
                let minus = neighbor3(me, g.dims, axis, -1);
                let plus = neighbor3(me, g.dims, axis, 1);
                let bytes = face_bytes(&g, axis, level);
                let buf = vec![axis as u8; bytes];
                let tag = tag_base + axis as u64 * 2;
                if plus == me {
                    continue; // single process along this axis
                }
                let r1 = mpi.irecv(Src::Rank(minus), TagSel::Is(tag));
                let r2 = mpi.irecv(Src::Rank(plus), TagSel::Is(tag + 1));
                mpi.send(plus, tag, &buf);
                mpi.send(minus, tag + 1, &buf);
                mpi.waitall(&[r1, r2]);
            }
            mpi.compute(level_compute_ns(&g, level));
        }
        mpi.allreduce(&[1.0], simmpi::ReduceOp::Sum);
    }
}

/// Offsets into the shared segment for ghost faces: each (axis, direction)
/// pair gets a disjoint slot sized for the finest face; coarser levels
/// reuse their slot (ghost writes of different levels never coexist within
/// a V-cycle step).
fn ghost_offset(g: &MgGeometry, axis: usize, dir: usize, _level: usize) -> usize {
    let slot = axis * 2 + dir;
    let finest = face_bytes(g, 0, 0)
        .max(face_bytes(g, 1, 0))
        .max(face_bytes(g, 2, 0));
    slot * finest
}

/// Segment size needed for the ghost slots.
fn segment_len(g: &MgGeometry) -> usize {
    let finest = face_bytes(g, 0, 0)
        .max(face_bytes(g, 1, 0))
        .max(face_bytes(g, 2, 0));
    6 * finest
}

/// Run an ARMCI variant (blocking or non-blocking).
pub fn run_mg_armci(a: &mut Armci, p: &MgParams, variant: MgVariant) {
    assert_ne!(
        variant,
        MgVariant::Mpi,
        "use run_mg_mpi for the MPI variant"
    );
    let g = geometry(a.nranks(), p);
    let me = a.rank();
    let mem = a.malloc(segment_len(&g));
    a.barrier();

    for _ in 0..p.iterations {
        for level in v_cycle(g.levels) {
            let compute = level_compute_ns(&g, level);
            match variant {
                MgVariant::ArmciBlocking => {
                    // Update each dimension, then work on the data.
                    for axis in 0..3 {
                        let minus = neighbor3(me, g.dims, axis, -1);
                        let plus = neighbor3(me, g.dims, axis, 1);
                        if plus == me {
                            continue;
                        }
                        let bytes = face_bytes(&g, axis, level);
                        let buf = vec![(axis + 1) as u8; bytes];
                        a.put(&mem, plus, ghost_offset(&g, axis, 0, level), &buf);
                        a.put(&mem, minus, ghost_offset(&g, axis, 1, level), &buf);
                        a.barrier();
                        a.compute(compute / 3);
                    }
                }
                MgVariant::ArmciNonBlocking => {
                    // Issue the next dimension's update *before* working on
                    // the current dimension's data (Tipparaju et al.).
                    let mut pending: Vec<simarmci::NbHandle> = Vec::new();
                    for axis in 0..3 {
                        let minus = neighbor3(me, g.dims, axis, -1);
                        let plus = neighbor3(me, g.dims, axis, 1);
                        if plus != me {
                            let bytes = face_bytes(&g, axis, level);
                            let buf = vec![(axis + 1) as u8; bytes];
                            pending.push(a.nb_put(
                                &mem,
                                plus,
                                ghost_offset(&g, axis, 0, level),
                                &buf,
                            ));
                            pending.push(a.nb_put(
                                &mem,
                                minus,
                                ghost_offset(&g, axis, 1, level),
                                &buf,
                            ));
                        }
                        // Work on the *previous* dimension's data while the
                        // puts fly.
                        a.compute(compute / 3);
                    }
                    for h in pending {
                        a.wait(h);
                    }
                    a.barrier();
                }
                MgVariant::Mpi => unreachable!(),
            }
        }
        a.allreduce_sum(&[1.0]);
    }
}
