//! Golden-snapshot suite for the scheduler overhaul.
//!
//! The goldens under `tests/goldens/` were captured from `repro <id> --jobs
//! 1` *before* the engine's binary heap was replaced by the timing wheel
//! (and before message pooling / diagnostic interning). These tests pin the
//! refactor to byte-for-byte equivalence:
//!
//! * one micro-benchmark figure (`fig03`), one ablation (`ablation-eager`),
//!   and one NAS-kernel figure (`fig14`) rendered-series snapshot,
//! * FNV-1a-64 checksums + byte lengths of fig03's exported trace files
//!   (`fig03.trace.fnv` — the raw exports are several MB, so the golden
//!   stores digests; re-blessed when the export schema intentionally
//!   changes, most recently for the `schema_version` header and the
//!   wait/fault lines that ride the JSONL stream),
//! * job-count invariance: the concatenated `--jobs 4` output equals the
//!   serial goldens.
//!
//! Trace capture and the worker budget are process-global, so every test
//! takes one shared lock.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

use overlap_core::trace::{chrome_json, jsonl, TraceBundle};

/// Serialize tests: `tracecap` and the runner's job budget are global.
fn global_lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Look up a harness by id across both registries.
fn harness(id: &str) -> bench::Harness {
    bench::figures::all()
        .into_iter()
        .chain(bench::ablations::all())
        .find(|h| h.id == id)
        .unwrap_or_else(|| panic!("harness {id} not registered"))
}

/// What `repro <id>` prints for one harness: the rendered series plus the
/// blank separator line.
fn rendered(id: &str) -> String {
    format!("{}\n", (harness(id).run)().render())
}

fn assert_golden(id: &str, golden: &str) {
    let got = rendered(id);
    assert!(
        got == golden,
        "{id} output diverged from tests/goldens/{id}.txt\n--- golden ---\n{golden}\n--- got ---\n{got}"
    );
}

#[test]
fn fig03_micro_series_matches_golden() {
    let _g = global_lock();
    assert_golden("fig03", include_str!("goldens/fig03.txt"));
}

#[test]
fn fig14_nas_series_matches_golden() {
    let _g = global_lock();
    assert_golden("fig14", include_str!("goldens/fig14.txt"));
}

#[test]
fn ablation_eager_series_matches_golden() {
    let _g = global_lock();
    assert_golden("ablation-eager", include_str!("goldens/ablation-eager.txt"));
}

#[test]
fn stdout_is_job_count_invariant() {
    let _g = global_lock();
    let ids = ["fig03", "fig14", "ablation-eager"];
    let selection: Vec<bench::Harness> = ids.iter().map(|id| harness(id)).collect();
    bench::runner::set_jobs(4);
    let mut got = String::new();
    bench::runner::run_harnesses(&selection, |run| {
        got.push_str(&run.series.render());
        got.push('\n');
    });
    bench::runner::set_jobs(1);
    let golden = concat!(
        include_str!("goldens/fig03.txt"),
        include_str!("goldens/fig14.txt"),
        include_str!("goldens/ablation-eager.txt"),
    );
    assert!(
        got == golden,
        "parallel (--jobs 4) output diverged from the serial goldens"
    );
}

/// FNV-1a 64-bit, matching the digests stored in `fig03.trace.fnv`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn fig03_trace_exports_match_golden_checksums() {
    let _g = global_lock();
    bench::tracecap::enable();
    let _ = bench::tracecap::drain(); // discard scopes captured by earlier tests
    let _series = (harness("fig03").run)();

    // Group scopes by harness id exactly as `repro --trace` does.
    let mut by_id: BTreeMap<String, Vec<TraceBundle>> = BTreeMap::new();
    for (scope, bundle) in bench::tracecap::drain() {
        let id = scope.split('/').next().unwrap_or(&scope).to_string();
        by_id.entry(id).or_default().push(bundle);
    }
    let bundles = by_id.get("fig03").expect("fig03 produced traced scopes");

    let golden = include_str!("goldens/fig03.trace.fnv");
    let mut checked = 0;
    for line in golden.lines() {
        let mut parts = line.split_whitespace();
        let (name, hash, len) = (
            parts.next().expect("golden line: file name"),
            parts.next().expect("golden line: fnv hash"),
            parts.next().expect("golden line: byte length"),
        );
        let contents = match name {
            "fig03.trace.json" => chrome_json(bundles),
            "fig03.events.jsonl" => jsonl(bundles),
            other => panic!("unexpected golden entry {other}"),
        };
        assert_eq!(
            contents.len().to_string(),
            len,
            "{name}: exported byte length changed"
        );
        assert_eq!(
            format!("{:016x}", fnv1a64(contents.as_bytes())),
            hash,
            "{name}: exported contents changed"
        );
        checked += 1;
    }
    assert_eq!(checked, 2, "golden checksum file should list both exports");
}
