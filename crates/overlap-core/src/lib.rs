#![warn(missing_docs)]

//! # overlap-core — the CLUSTER'06 overlap instrumentation framework
//!
//! This crate is the paper's primary contribution: a performance
//! instrumentation framework that lives *inside* a communication library and
//! characterizes the degree of computation-communication overlap achieved by
//! a message-passing application — without any NIC-level time-stamp support.
//!
//! ## The measurement problem
//!
//! Data transfers on user-level networks are initiated and carried out by the
//! NIC; the host only knows when it *posted* an operation and when a *poll*
//! observed its completion. Precise overlap is therefore unknowable from the
//! host. The framework instead computes **bounds**: for every transfer it
//! derives a minimum and maximum overlapped transfer time from four in-library
//! events (`CALL_ENTER`, `CALL_EXIT`, `XFER_BEGIN`, `XFER_END`) plus an
//! a-priori transfer-time table measured once by a microbenchmark.
//!
//! ## Structure (paper Figure 2)
//!
//! * [`recorder::Recorder`] — the per-process facade a communication library
//!   calls into; owns a fixed-size circular **event queue**
//!   ([`queue::EventRing`], the *data collection module*),
//! * [`processor::Processor`] — the *data processing module*: folds events
//!   into running overlap aggregates whenever the queue fills (no tracing,
//!   no growing buffers),
//! * [`xfer_table::XferTimeTable`] — the disk-resident a-priori transfer
//!   times loaded at init,
//! * [`report::OverlapReport`] — the per-process output file contents:
//!   totals, message-size-bin breakdowns, and user-controlled monitored
//!   sections.
//!
//! The framework is *library-agnostic*: it only needs a monotonic per-process
//! [`clock::Clock`]. In this repository it instruments the simulated MPI
//! (`simmpi`) and ARMCI (`simarmci`) libraries, exactly as the paper
//! instrumented Open MPI, MVAPICH2 and ARMCI.
//!
//! ## Observability extensions (beyond the paper)
//!
//! * [`metrics::MetricsRegistry`] — per-process named counters and
//!   fixed-bucket histograms (call latency, transfer times, per-size-bin
//!   overlap bounds), populated at fold time and carried in every
//!   [`report::OverlapReport`],
//! * [`trace`] — optional time-resolved capture
//!   ([`RecorderOpts::trace`]): the raw event stream plus one
//!   [`trace::BoundRecord`] per transfer, exportable as Chrome-trace JSON
//!   ([`trace::chrome_json`], loadable in Perfetto), JSON lines
//!   ([`trace::jsonl`]), and windowed time-resolved series
//!   ([`trace::windowed`]),
//! * [`observer`] — PERUSE-style synchronous observer hook on the raw
//!   stream (predates the trace module; still useful for live filtering),
//! * [`attribution`] — wait-state attribution: folds library-classified
//!   blocking intervals ([`attribution::WaitInterval`]) into per-transfer
//!   cause breakdowns that reconcile exactly with the overlap bounds, plus
//!   flamegraph-collapsed critical-path export,
//! * [`stream`] — streaming ingest: folds an exported JSONL event stream
//!   back into batch-identical aggregates with bounded memory
//!   ([`stream::SessionFold`]); the substrate of the `overlapd` analysis
//!   service,
//! * [`artifact`] — the serialized attribution-artifact shapes shared by
//!   the batch CLI and `overlapd`, so both emit byte-identical files.
//!
//! See `docs/ARCHITECTURE.md` for how these layers fit together and
//! `docs/BOUNDS.md` for the bound algorithm itself.
//!
//! ## Example
//!
//! ```
//! use overlap_core::{ManualClock, Recorder, RecorderOpts, XferTimeTable};
//!
//! let clock = ManualClock::new();
//! let table = XferTimeTable::from_points(vec![(1, 400)]); // 400 ns transfers
//! let mut rec = Recorder::new(0, Box::new(clock.clone()), table, RecorderOpts::default());
//!
//! rec.call_enter("MPI_Isend");
//! rec.xfer_begin(1, 1024);     // library posts the transfer
//! clock.advance(10);
//! rec.call_exit();
//! clock.advance(1_000);        // user computation — the overlap window
//! rec.call_enter("MPI_Wait");
//! rec.xfer_end(1, 1024);       // poll observes completion
//! clock.advance(10);
//! rec.call_exit();
//!
//! let report = rec.finish();
//! assert_eq!(report.total.max_overlap, 400);       // fully coverable
//! assert_eq!(report.total.min_overlap, 400 - 10);  // all but in-library time
//! ```

pub mod advice;
pub mod artifact;
pub mod attribution;
pub mod bins;
pub mod bounds;
pub mod clock;
pub mod event;
pub mod invariant;
pub mod metrics;
pub mod observer;
pub mod processor;
pub mod queue;
pub mod recorder;
pub mod report;
pub mod stream;
pub mod trace;
pub mod xfer_table;

pub use advice::{analyze, AdviceOpts, Finding, Severity};
pub use attribution::{
    attribute, collapsed_stack, CauseRecord, CauseSlice, RankAttribution, WaitCause, WaitInterval,
};
pub use bins::SizeBins;
pub use bounds::{OverlapBounds, XferCase};
pub use clock::{Clock, ManualClock};
pub use event::{Event, EventKind};
pub use invariant::{check_report, check_reports, Violation};
pub use metrics::{Histogram, MetricsRegistry};
pub use observer::{EventObserver, TraceSink};
pub use queue::{EventRing, RingFull};
pub use recorder::{Recorder, RecorderOpts};
pub use report::{CallStats, ClusterSummary, OverlapReport, OverlapStats, SectionReport};
pub use stream::{FoldOpts, RankSummary, ScopeReport, ScopeSeries, SessionFold, StreamError};
pub use trace::{BoundRecord, ExtraEvent, RankTrace, TraceBundle, WindowRow};
pub use xfer_table::XferTimeTable;
