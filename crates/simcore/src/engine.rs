//! The discrete-event engine and cooperative rank scheduler.
//!
//! The engine owns a time-ordered queue of entries, each either a
//! state-mutating callback (used by the network model), a token delivery
//! (a pre-registered handler applied to a `u64`, the allocation-free fast
//! path), or a rank wake-up. Ranks execute on dedicated OS threads but the
//! engine hands control to at most one of them at a time through a
//! rendezvous channel pair, so the whole simulation is logically
//! single-threaded and deterministic: entries are ordered by
//! `(time, sequence-number)`.
//!
//! # Queue architecture
//!
//! The pending-event set lives in a hierarchical [`TimingWheel`] owned by
//! the run loop itself — popping takes no lock. Producers (rank threads and
//! event callbacks) append to one of a small number of sharded insertion
//! buffers, picked per thread, and flag the shard in an atomic occupancy
//! mask. Before each pop the engine drains exactly the flagged shards into
//! the wheel, so a shard lock is taken once per drain batch rather than
//! once per event, and an idle shard costs nothing. Global `(time, seq)`
//! order is restored inside the wheel no matter which shard an entry
//! travelled through, because sequence numbers are allocated in program
//! order at push time.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::error::SimError;
use crate::oracle::{ChoicePoint, OracleHandle};
use crate::rank::RankCtx;
use crate::sched::TimingWheel;
use crate::time::{Duration, Time};
use crate::truth::ActivityLog;

/// A scheduled callback: runs at its time with access to the engine handle so
/// it can schedule follow-up events and wake ranks.
type Callback = Box<dyn FnOnce(&EngineHandle) + Send>;

/// Handler for [`Action::Token`] entries, registered once per simulation via
/// [`EngineHandle::set_token_handler`].
type TokenHandler = Arc<dyn Fn(&EngineHandle, u64) + Send + Sync>;

pub(crate) enum Action {
    WakeRank(usize),
    Call(Callback),
    Token(u64),
}

pub(crate) struct Entry {
    time: Time,
    seq: u64,
    action: Action,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    NotStarted,
    Running,
    Sleeping,
    Parked,
    Done,
}

struct RankSlot {
    phase: Phase,
    wake_pending: bool,
}

/// Library-supplied diagnostic notes for one rank, dumped on deadlock.
///
/// Updated on the rank's hot yield path, so the fields are designed to be
/// cheap to refresh: the blocked-on note is a shared `Arc<str>` the library
/// re-clones only when its state fingerprint changes, and the last-call name
/// is a `&'static str` stored by pointer.
#[derive(Default)]
pub(crate) struct DiagSlot {
    pub(crate) blocked_on: Option<Arc<str>>,
    pub(crate) last_call: Option<&'static str>,
    /// Structured wait-for edge: the rank this one is waiting on, if the
    /// library can name a single peer (used for deadlock cycle reports).
    pub(crate) waits_on_rank: Option<usize>,
    /// The library-level request id the rank is blocked in, if any.
    pub(crate) waits_on_req: Option<u64>,
}

/// Number of insertion-buffer shards. Power of two; at most 64 so the
/// occupancy mask fits one `u64`.
const INBOX_SHARDS: usize = 16;

/// One insertion buffer, padded to its own cache line so producers on
/// different shards never false-share.
#[repr(align(64))]
struct InboxShard {
    buf: Mutex<Vec<Entry>>,
}

/// Global producer counter used to spread threads across inbox shards.
static PRODUCER_IDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's inbox shard index.
    static MY_SHARD: usize =
        PRODUCER_IDS.fetch_add(1, AtomicOrdering::Relaxed) % INBOX_SHARDS;
}

pub(crate) struct EngineShared {
    inbox: Box<[InboxShard]>,
    /// Bit `s` set ⇒ shard `s` may hold entries; swapped to zero on drain.
    inbox_mask: AtomicU64,
    now: AtomicU64,
    seq: AtomicU64,
    slots: Mutex<Vec<RankSlot>>,
    pub(crate) diags: Box<[Mutex<DiagSlot>]>,
    token_handler: Mutex<Option<TokenHandler>>,
    oracle: Mutex<Option<OracleHandle>>,
}

impl EngineShared {
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, AtomicOrdering::Relaxed)
    }

    fn push(&self, time: Time, action: Action) {
        let seq = self.next_seq();
        let shard = MY_SHARD.with(|s| *s);
        self.inbox[shard]
            .buf
            .lock()
            .push(Entry { time, seq, action });
        self.inbox_mask
            .fetch_or(1 << shard, AtomicOrdering::Release);
    }

    /// Move every buffered entry into the wheel. Only shards flagged in the
    /// occupancy mask are visited (and locked), once per drain.
    fn drain_inbox(&self, wheel: &mut TimingWheel<Action>) {
        let mut mask = self.inbox_mask.swap(0, AtomicOrdering::Acquire);
        while mask != 0 {
            let s = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let mut buf = self.inbox[s].buf.lock();
            for e in buf.drain(..) {
                wheel.push(e.time, e.seq, e.action);
            }
        }
    }
}

/// Cloneable handle into a running (or not-yet-run) simulation. Event
/// callbacks and library code use it to read the clock, schedule future
/// events, and wake parked ranks.
#[derive(Clone)]
pub struct EngineHandle {
    pub(crate) shared: Arc<EngineShared>,
}

impl EngineHandle {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.shared.now.load(AtomicOrdering::Relaxed)
    }

    /// Schedule `f` to run at absolute virtual time `t` (clamped to `now`).
    pub fn schedule_at<F>(&self, t: Time, f: F)
    where
        F: FnOnce(&EngineHandle) + Send + 'static,
    {
        let t = t.max(self.now());
        self.shared.push(t, Action::Call(Box::new(f)));
    }

    /// Schedule `f` to run `delay` nanoseconds from now.
    pub fn schedule_in<F>(&self, delay: Duration, f: F)
    where
        F: FnOnce(&EngineHandle) + Send + 'static,
    {
        self.schedule_at(self.now().saturating_add(delay), f);
    }

    /// Register the handler invoked for every token scheduled with
    /// [`EngineHandle::schedule_token`]. One handler per simulation (a later
    /// call replaces the previous one); it must be installed before
    /// [`crate::Simulation::run`], which snapshots it once at startup.
    pub fn set_token_handler<F>(&self, f: F)
    where
        F: Fn(&EngineHandle, u64) + Send + Sync + 'static,
    {
        *self.shared.token_handler.lock() = Some(Arc::new(f));
    }

    /// Schedule the registered token handler to run on `token` at absolute
    /// virtual time `t` (clamped to `now`). Unlike [`EngineHandle::schedule_at`]
    /// this allocates nothing: the token is a plain `u64`, typically an index
    /// into a caller-owned arena describing the work.
    pub fn schedule_token(&self, t: Time, token: u64) {
        let t = t.max(self.now());
        self.shared.push(t, Action::Token(token));
    }

    /// Install a schedule oracle controlling the engine's nondeterminism
    /// points (see [`crate::oracle`]). Like the token handler it must be
    /// installed before [`crate::Simulation::run`], which snapshots it once
    /// at startup; library layers query it per choice point via
    /// [`EngineHandle::oracle`]. Without an oracle the engine takes its
    /// original fixed-policy fast path.
    pub fn set_oracle(&self, oracle: OracleHandle) {
        *self.shared.oracle.lock() = Some(oracle);
    }

    /// The installed schedule oracle, if any.
    pub fn oracle(&self) -> Option<OracleHandle> {
        self.shared.oracle.lock().clone()
    }

    /// Wake rank `r` if it is parked. No-op for running, sleeping (a rank
    /// that is mid-`compute` is uninterruptible — it discovers new state at
    /// its next library call), or finished ranks. Idempotent: at most one
    /// wake-up entry is outstanding per parked rank.
    pub fn wake_rank(&self, r: usize) {
        let mut slots = self.shared.slots.lock();
        let slot = &mut slots[r];
        if slot.phase == Phase::Parked && !slot.wake_pending {
            slot.wake_pending = true;
            drop(slots);
            self.shared.push(self.now(), Action::WakeRank(r));
        }
    }
}

/// Resource limits for a simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOpts {
    /// Abort with [`SimError::TimeLimitExceeded`] if virtual time passes this.
    pub max_time: Option<Time>,
    /// Abort with [`SimError::EventLimitExceeded`] after this many entries.
    pub max_events: Option<u64>,
}

/// Successful simulation result.
#[derive(Debug)]
pub struct SimOutcome {
    /// Virtual time when the last entry was processed.
    pub end_time: Time,
    /// Per-rank ground-truth activity logs.
    pub activity: Vec<ActivityLog>,
    /// Number of queue entries processed (events + wake-ups).
    pub events_processed: u64,
}

pub(crate) enum YieldMsg {
    Sleep(Time),
    Park,
    Done(ActivityLog),
    Panicked(String),
}

/// A simulation: `nranks` cooperative processes over one virtual clock.
pub struct Simulation {
    shared: Arc<EngineShared>,
    nranks: usize,
}

impl Simulation {
    /// Create a simulation with `nranks` ranks. The engine handle is
    /// available immediately (e.g. to build the network model) even before
    /// [`Simulation::run`] is called.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "simulation needs at least one rank");
        let slots = (0..nranks)
            .map(|_| RankSlot {
                phase: Phase::NotStarted,
                wake_pending: false,
            })
            .collect();
        Simulation {
            shared: Arc::new(EngineShared {
                inbox: (0..INBOX_SHARDS)
                    .map(|_| InboxShard {
                        buf: Mutex::new(Vec::new()),
                    })
                    .collect(),
                inbox_mask: AtomicU64::new(0),
                now: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                slots: Mutex::new(slots),
                diags: (0..nranks)
                    .map(|_| Mutex::new(DiagSlot::default()))
                    .collect(),
                token_handler: Mutex::new(None),
                oracle: Mutex::new(None),
            }),
            nranks,
        }
    }

    /// Handle for scheduling events and waking ranks.
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Run `body` once per rank to completion. Returns the outcome or the
    /// first terminal error (deadlock, rank panic, resource limit).
    pub fn run<F>(self, opts: SimOpts, body: F) -> Result<SimOutcome, SimError>
    where
        F: Fn(&mut RankCtx) + Send + Sync + 'static,
    {
        install_abort_hook();
        let body = Arc::new(body);
        let n = self.nranks;
        let mut resume_txs: Vec<Sender<()>> = Vec::with_capacity(n);
        let mut yield_rxs: Vec<Receiver<YieldMsg>> = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);

        for r in 0..n {
            let (resume_tx, resume_rx) = bounded::<()>(1);
            let (yield_tx, yield_rx) = bounded::<YieldMsg>(1);
            resume_txs.push(resume_tx);
            yield_rxs.push(yield_rx);
            let body = Arc::clone(&body);
            let shared = Arc::clone(&self.shared);
            let spawned = std::thread::Builder::new()
                .name(format!("sim-rank-{r}"))
                .spawn(move || {
                    // Wait for the first wake-up; if the engine aborted
                    // before starting us, just exit.
                    if resume_rx.recv().is_err() {
                        return;
                    }
                    let mut ctx = RankCtx::new(r, n, shared, yield_tx.clone(), resume_rx);
                    let result = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                    match result {
                        Ok(()) => {
                            let log = ctx.take_log();
                            let _ = yield_tx.send(YieldMsg::Done(log));
                        }
                        Err(payload) => {
                            let msg = panic_message(payload.as_ref());
                            let _ = yield_tx.send(YieldMsg::Panicked(msg));
                        }
                    }
                });
            match spawned {
                Ok(j) => joins.push(j),
                Err(e) => {
                    // Unblock the threads spawned so far (their first recv
                    // errors out and they exit) before reporting.
                    drop(resume_txs);
                    for j in joins {
                        let _ = j.join();
                    }
                    return Err(SimError::SpawnFailed {
                        rank: r,
                        message: e.to_string(),
                    });
                }
            }
        }

        // The pending-event set. Owned by this loop: pops never lock. The
        // handler snapshot is taken once — tokens are dispatched without
        // touching the registration mutex again.
        let mut wheel: TimingWheel<Action> = TimingWheel::new();
        let token_handler = self.shared.token_handler.lock().clone();
        let oracle = self.shared.oracle.lock().clone();

        // Kick off every rank at t = 0.
        for r in 0..n {
            let seq = self.shared.next_seq();
            wheel.push(0, seq, Action::WakeRank(r));
        }

        let handle = self.handle();
        let mut logs: Vec<Option<ActivityLog>> = (0..n).map(|_| None).collect();
        let mut events: u64 = 0;
        let result = 'main: loop {
            // Adopt everything produced since the last entry ran. Ranks only
            // execute while the engine blocks on their yield channel, so by
            // this point all their pushes are visible and nothing new can
            // arrive before the pop below.
            self.shared.drain_inbox(&mut wheel);
            let popped = match &oracle {
                None => wheel.pop(),
                Some(orc) => pop_with_oracle(&mut wheel, orc),
            };
            let Some((time, _seq, action)) = popped else {
                let slots = self.shared.slots.lock();
                let stuck: Vec<usize> = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.phase != Phase::Done)
                    .map(|(i, _)| i)
                    .collect();
                if stuck.is_empty() {
                    break Ok(());
                }
                drop(slots);
                let diags = stuck
                    .iter()
                    .map(|&r| {
                        let d = self.shared.diags[r].lock();
                        crate::error::RankDiag {
                            rank: r,
                            blocked_on: d.blocked_on.as_ref().map(|s| s.to_string()),
                            last_call: d.last_call.map(|s| s.to_string()),
                            waits_on_rank: d.waits_on_rank,
                            waits_on_req: d.waits_on_req,
                        }
                    })
                    .collect();
                break Err(SimError::Deadlock {
                    parked: stuck,
                    at: handle.now(),
                    diags,
                });
            };
            events += 1;
            if let Some(limit) = opts.max_events {
                if events > limit {
                    break Err(SimError::EventLimitExceeded { limit });
                }
            }
            if let Some(limit) = opts.max_time {
                if time > limit {
                    break Err(SimError::TimeLimitExceeded { limit });
                }
            }
            debug_assert!(time >= handle.now(), "time went backwards");
            self.shared.now.store(time, AtomicOrdering::Relaxed);

            match action {
                Action::Call(f) => f(&handle),
                Action::Token(tok) => {
                    debug_assert!(
                        token_handler.is_some(),
                        "token {tok} scheduled without a registered handler"
                    );
                    if let Some(h) = &token_handler {
                        h(&handle, tok);
                    }
                }
                Action::WakeRank(r) => {
                    let should_run = {
                        let mut slots = self.shared.slots.lock();
                        let slot = &mut slots[r];
                        slot.wake_pending = false;
                        match slot.phase {
                            Phase::NotStarted | Phase::Sleeping | Phase::Parked => {
                                slot.phase = Phase::Running;
                                true
                            }
                            Phase::Done => false,
                            Phase::Running => unreachable!("rank {r} woken while running"),
                        }
                    };
                    if !should_run {
                        continue;
                    }
                    if resume_txs[r].send(()).is_err() {
                        break Err(SimError::RankPanic {
                            rank: r,
                            message: "rank thread exited unexpectedly".into(),
                        });
                    }
                    match yield_rxs[r].recv() {
                        Ok(YieldMsg::Sleep(t)) => {
                            self.shared.slots.lock()[r].phase = Phase::Sleeping;
                            // Engine-local: straight into the wheel, skipping
                            // the inbox (same seq counter, same order).
                            let seq = self.shared.next_seq();
                            wheel.push(t.max(handle.now()), seq, Action::WakeRank(r));
                        }
                        Ok(YieldMsg::Park) => {
                            self.shared.slots.lock()[r].phase = Phase::Parked;
                        }
                        Ok(YieldMsg::Done(log)) => {
                            self.shared.slots.lock()[r].phase = Phase::Done;
                            logs[r] = Some(log);
                        }
                        Ok(YieldMsg::Panicked(message)) => {
                            break 'main Err(SimError::RankPanic { rank: r, message });
                        }
                        Err(_) => {
                            break Err(SimError::RankPanic {
                                rank: r,
                                message: "rank thread dropped its yield channel".into(),
                            });
                        }
                    }
                }
            }
        };

        // Teardown: dropping the resume senders unblocks any waiting threads
        // (their recv errors and they unwind out of the rank body).
        drop(resume_txs);
        for j in joins {
            let _ = j.join();
        }

        result?;
        let mut activity = Vec::with_capacity(n);
        for (r, log) in logs.into_iter().enumerate() {
            match log {
                Some(l) => activity.push(l),
                None => return Err(SimError::MissingRankLog { rank: r }),
            }
        }
        Ok(SimOutcome {
            end_time: handle.now(),
            activity,
            events_processed: events,
        })
    }
}

/// Oracle-driven pop: collect every entry tied at the earliest due time,
/// let the oracle pick one, and re-insert the rest (they keep their seq, so
/// the canonical order among them is restored inside the wheel).
///
/// With the [`crate::oracle::Canonical`] oracle choice `0` — the lowest
/// sequence number — is always taken, which is exactly what a plain
/// [`TimingWheel::pop`] returns, so the schedule is byte-identical to the
/// no-oracle fast path.
fn pop_with_oracle(
    wheel: &mut TimingWheel<Action>,
    orc: &OracleHandle,
) -> Option<(Time, u64, Action)> {
    let (time, seq0, a0) = wheel.pop()?;
    let mut cands = vec![(seq0, a0)];
    while let Some((_, s, a)) = wheel.pop_current() {
        cands.push((s, a));
    }
    let pick = if cands.len() > 1 {
        orc.choose(ChoicePoint::EventTie {
            time,
            n: cands.len(),
        })
    } else {
        0
    };
    let (seq, action) = cands.swap_remove(pick);
    for (s, a) in cands {
        wheel.push(time, s, a);
    }
    Some((time, seq, action))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Silence the designed `"simulation aborted"` unwind that tears rank
/// threads down when the engine stops early (deadlock, limit, another
/// rank's panic): it is control flow, not an error, and the default hook
/// would print one message-plus-backtrace per parked rank. Every other
/// panic still reaches the previously installed hook. Installed once,
/// process-wide, on first engine run.
fn install_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_abort = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| *s == "simulation aborted")
                .unwrap_or(false);
            if !is_abort {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::Activity;

    #[test]
    fn single_rank_computes_and_finishes() {
        let sim = Simulation::new(1);
        let out = sim
            .run(SimOpts::default(), |ctx| {
                ctx.compute(100);
                ctx.compute(50);
            })
            .unwrap();
        assert_eq!(out.end_time, 150);
        assert_eq!(out.activity[0].total(Activity::Compute), 150);
    }

    #[test]
    fn ranks_advance_independently() {
        let sim = Simulation::new(3);
        let out = sim
            .run(SimOpts::default(), |ctx| {
                let d = (ctx.rank() as u64 + 1) * 10;
                ctx.compute(d);
            })
            .unwrap();
        assert_eq!(out.end_time, 30);
        for r in 0..3 {
            assert_eq!(
                out.activity[r].total(Activity::Compute),
                (r as u64 + 1) * 10
            );
        }
    }

    #[test]
    fn callback_wakes_parked_rank() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        handle.schedule_at(500, |h| h.wake_rank(0));
        let out = sim
            .run(SimOpts::default(), |ctx| {
                ctx.park();
                assert_eq!(ctx.now(), 500);
            })
            .unwrap();
        assert_eq!(out.end_time, 500);
    }

    #[test]
    fn park_records_library_wait() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        handle.schedule_at(200, |h| h.wake_rank(0));
        let out = sim
            .run(SimOpts::default(), |ctx| {
                ctx.park();
            })
            .unwrap();
        assert_eq!(out.activity[0].total(Activity::LibraryWait), 200);
    }

    #[test]
    fn deadlock_detected() {
        let sim = Simulation::new(2);
        let err = sim
            .run(SimOpts::default(), |ctx| {
                if ctx.rank() == 0 {
                    ctx.park(); // nobody will ever wake rank 0
                }
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { parked, .. } => assert_eq!(parked, vec![0]),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn rank_panic_propagates() {
        let sim = Simulation::new(2);
        let err = sim
            .run(SimOpts::default(), |ctx| {
                if ctx.rank() == 1 {
                    panic!("boom");
                }
                ctx.compute(10);
            })
            .unwrap_err();
        match err {
            SimError::RankPanic { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("boom"));
            }
            other => panic!("expected rank panic, got {other}"),
        }
    }

    #[test]
    fn chained_callbacks_keep_time_order() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        handle.schedule_at(10, |h| {
            assert_eq!(h.now(), 10);
            h.schedule_in(5, |h2| {
                assert_eq!(h2.now(), 15);
                h2.wake_rank(0);
            });
        });
        let out = sim
            .run(SimOpts::default(), |ctx| {
                ctx.park();
                assert_eq!(ctx.now(), 15);
            })
            .unwrap();
        assert_eq!(out.end_time, 15);
    }

    #[test]
    fn event_limit_enforced() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        // Self-perpetuating callback chain.
        fn again(h: &EngineHandle) {
            h.schedule_in(1, again);
        }
        handle.schedule_at(0, again);
        let err = sim
            .run(
                SimOpts {
                    max_events: Some(100),
                    ..Default::default()
                },
                |ctx| ctx.park(),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::EventLimitExceeded { .. }));
    }

    #[test]
    fn time_limit_enforced() {
        let sim = Simulation::new(1);
        let err = sim
            .run(
                SimOpts {
                    max_time: Some(1_000),
                    ..Default::default()
                },
                |ctx| {
                    ctx.compute(10_000);
                },
            )
            .unwrap_err();
        assert!(matches!(err, SimError::TimeLimitExceeded { .. }));
    }

    #[test]
    fn wake_is_idempotent_for_parked_rank() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        handle.schedule_at(100, |h| {
            h.wake_rank(0);
            h.wake_rank(0); // duplicate wake must not break anything
        });
        let out = sim
            .run(SimOpts::default(), |ctx| {
                ctx.park();
                ctx.compute(1);
            })
            .unwrap();
        assert_eq!(out.end_time, 101);
    }

    #[test]
    fn deterministic_event_order_for_ties() {
        // Two callbacks at the same time must run in scheduling order.
        let sim = Simulation::new(1);
        let handle = sim.handle();
        let seen = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let seen = Arc::clone(&seen);
            handle.schedule_at(42, move |h| {
                seen.lock().push(i);
                if i == 4 {
                    h.wake_rank(0);
                }
            });
        }
        sim.run(SimOpts::default(), |ctx| ctx.park()).unwrap();
        assert_eq!(&*seen.lock(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn tokens_dispatch_through_handler_in_order() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        handle.set_token_handler(move |h, tok| {
            seen2.lock().push((h.now(), tok));
            if tok == 7 {
                h.wake_rank(0);
            }
        });
        handle.schedule_token(30, 7);
        handle.schedule_token(10, 3);
        handle.schedule_token(10, 4);
        sim.run(SimOpts::default(), |ctx| ctx.park()).unwrap();
        assert_eq!(&*seen.lock(), &[(10, 3), (10, 4), (30, 7)]);
    }

    #[test]
    fn tokens_and_callbacks_interleave_by_schedule_order() {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        handle.set_token_handler(move |_h, tok| seen2.lock().push(tok as i64));
        let seen3 = Arc::clone(&seen);
        handle.schedule_token(5, 1);
        handle.schedule_at(5, move |h| {
            seen3.lock().push(-1);
            h.wake_rank(0);
        });
        handle.schedule_token(5, 2);
        let err = sim.run(SimOpts::default(), |ctx| ctx.park());
        // Token 2 runs after the callback that wakes rank 0; the rank then
        // finishes, so the run completes cleanly.
        err.unwrap();
        assert_eq!(&*seen.lock(), &[1, -1, 2]);
    }
}
