//! Engine-level schedule-oracle tests: canonical equivalence, random
//! permutation determinism, and replay fidelity.

use std::sync::Arc;

use parking_lot::Mutex;
use simcore::{Canonical, OracleHandle, RandomOracle, ReplayOracle, SimOpts, Simulation};

/// A small workload with plenty of same-time ties: 3 ranks ping events at
/// each other through callbacks, and several callbacks land on the same
/// virtual nanosecond. Returns the observed event order tags plus end time.
fn run_tied_workload(oracle: Option<OracleHandle>) -> (Vec<u32>, u64, Option<OracleHandle>) {
    let sim = Simulation::new(3);
    let handle = sim.handle();
    let installed = oracle.inspect(|o| handle.set_oracle(o.clone()));
    let seen: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    for wave in 0..4u64 {
        for i in 0..5u32 {
            let seen = Arc::clone(&seen);
            let tag = wave as u32 * 10 + i;
            handle.schedule_at(100 * (wave + 1), move |h| {
                seen.lock().push(tag);
                // Chain a follow-up event that collides with the next wave.
                if i == 2 {
                    let t = h.now() + 100;
                    h.schedule_at(t, move |_| {});
                }
            });
        }
    }
    let out = sim
        .run(SimOpts::default(), |ctx| {
            ctx.compute(50 * (ctx.rank() as u64 + 1));
            ctx.compute(350);
        })
        .unwrap();
    let order = seen.lock().clone();
    (order, out.end_time, installed)
}

#[test]
fn canonical_oracle_matches_no_oracle_schedule() {
    let (base_order, base_end, _) = run_tied_workload(None);
    let (canon_order, canon_end, orc) =
        run_tied_workload(Some(OracleHandle::new(Box::new(Canonical))));
    assert_eq!(base_order, canon_order);
    assert_eq!(base_end, canon_end);
    // The ties existed (so the oracle was really consulted)…
    let orc = orc.unwrap();
    assert!(orc.decisions() > 0, "workload produced no ties");
    // …and every recorded canonical decision was choice 0.
    assert!(orc.trace().iter().all(|r| r.choice == 0));
}

#[test]
fn random_oracle_permutes_ties_deterministically() {
    let run = |seed| {
        let (order, end, orc) =
            run_tied_workload(Some(OracleHandle::new(Box::new(RandomOracle::new(seed)))));
        (order, end, orc.unwrap().trace())
    };
    let (o1, e1, t1) = run(7);
    let (o2, e2, t2) = run(7);
    assert_eq!(o1, o2, "same seed must reproduce the same schedule");
    assert_eq!(e1, e2);
    assert_eq!(t1, t2);
    // Some seed in a small range must produce a non-canonical order; the
    // workload has 5-way ties so this is overwhelmingly likely.
    let (base, ..) = run_tied_workload(None);
    assert!(
        (0..20).any(|s| run(s).0 != base),
        "no seed permuted the tied events"
    );
}

#[test]
fn replaying_a_recorded_trace_reproduces_the_schedule() {
    let (order, end, orc) =
        run_tied_workload(Some(OracleHandle::new(Box::new(RandomOracle::new(1234)))));
    let trace = orc.unwrap().trace();
    let (replayed, replay_end, replay_orc) = run_tied_workload(Some(OracleHandle::new(Box::new(
        ReplayOracle::new(trace.clone()),
    ))));
    assert_eq!(order, replayed);
    assert_eq!(end, replay_end);
    assert_eq!(trace, replay_orc.unwrap().trace());
}

#[test]
fn truncated_replay_prefix_still_runs_to_completion() {
    let (_, _, orc) = run_tied_workload(Some(OracleHandle::new(Box::new(RandomOracle::new(99)))));
    let mut trace = orc.unwrap().trace();
    trace.truncate(trace.len() / 2);
    // A prefix replay pads with canonical choices and must still terminate.
    let (order, _, _) =
        run_tied_workload(Some(OracleHandle::new(Box::new(ReplayOracle::new(trace)))));
    assert_eq!(order.len(), 20);
}
