//! NPB problem classes.

use serde::{Deserialize, Serialize};

/// NAS problem class. Geometry per benchmark follows the NPB 3.x tables;
/// see each kernel module for its sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Class {
    /// Sample (tiny) size.
    S,
    /// Workstation size.
    W,
    /// Class A.
    A,
    /// Class B.
    B,
}

impl Class {
    /// One-letter label.
    pub fn letter(&self) -> char {
        match self {
            Class::S => 'S',
            Class::W => 'W',
            Class::A => 'A',
            Class::B => 'B',
        }
    }

    /// All classes, smallest first.
    pub fn all() -> [Class; 4] {
        [Class::S, Class::W, Class::A, Class::B]
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters() {
        assert_eq!(Class::A.letter(), 'A');
        assert_eq!(format!("{}", Class::B), "B");
        assert_eq!(Class::all().len(), 4);
    }
}
