//! Minimal offline stand-in for `rand`.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over half-open integer ranges — the subset this
//! workspace uses. The generator is splitmix64, so sequences are
//! deterministic for a fixed seed.

use std::ops::Range;

/// Core source of randomness.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self.next_u64(), range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits are plenty for test workloads.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Map 64 random bits into `range`.
    fn sample_range(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(bits: u64, range: Range<Self>) -> Self {
                let lo = range.start as i128;
                let hi = range.end as i128;
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                let off = (bits as u128) % span;
                (lo + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(0usize..5);
            assert!(x < 5);
            assert_eq!(x, b.gen_range(0usize..5));
        }
        let mut c = StdRng::seed_from_u64(7);
        let y: u64 = c.gen_range(0..1_500_000u64);
        assert!(y < 1_500_000);
    }
}
