//! # overlap-suite
//!
//! A full reproduction of *"A Performance Instrumentation Framework to
//! Characterize Computation-Communication Overlap in Message-Passing
//! Systems"* (Shet, Sadayappan, Bernholdt, Nieplocha, Tipparaju — IEEE
//! Cluster 2006) as a Rust workspace, running on a deterministic simulated
//! RDMA cluster.
//!
//! ## Crates
//!
//! | crate | role |
//! |---|---|
//! | [`simcore`] | discrete-event engine, virtual clock, rank scheduler, ground truth |
//! | [`simnet`] | NICs, DMA engines, RDMA Read/Write, completion queues, cost model |
//! | [`overlap_core`] | **the paper's contribution**: min/max overlap bounds from in-library events |
//! | [`simmpi`] | MPI-like library (eager + two rendezvous modes, polling progress, collectives) |
//! | [`simarmci`] | ARMCI-like one-sided library |
//! | [`nasbench`] | NAS BT/CG/LU/FT/SP/MG/EP/IS communication-faithful kernels |
//!
//! ## Quickstart
//!
//! ```
//! use overlap_suite::prelude::*;
//!
//! let out = run_mpi(
//!     2,
//!     NetConfig::default(),
//!     MpiConfig::open_mpi_leave_pinned(),
//!     RecorderOpts::default(),
//!     |mpi| {
//!         let msg = vec![7u8; 1 << 20];
//!         for i in 0..5 {
//!             if mpi.rank() == 0 {
//!                 let r = mpi.isend(1, i, &msg);
//!                 mpi.compute(2_000_000); // 2 ms of virtual computation
//!                 mpi.wait(r);
//!             } else {
//!                 mpi.recv(Src::Rank(0), TagSel::Is(i));
//!             }
//!         }
//!     },
//! )
//! .unwrap();
//! // The sender overlapped nearly the whole transfer with its computation:
//! assert!(out.reports[0].total.min_pct() > 80.0);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! paper-figure reproduction harness (`cargo run -p bench --bin repro`).

pub use nasbench;
pub use overlap_core;
pub use simarmci;
pub use simcore;
pub use simmpi;
pub use simnet;

/// Common imports for applications.
pub mod prelude {
    pub use nasbench::Class;
    pub use overlap_core::{OverlapReport, RecorderOpts, XferTimeTable};
    pub use simarmci::{run_armci, Armci};
    pub use simcore::{ms, ns, us};
    pub use simmpi::{
        default_xfer_table, run_mpi, Mpi, MpiConfig, MpiRunOutcome, ReduceOp, RndvMode, Src, TagSel,
    };
    pub use simnet::NetConfig;
}
