//! Simulation error types.

use std::fmt;

/// Per-rank diagnostic snapshot taken when a deadlock is detected.
///
/// The notes are provided by the library running on the rank (via
/// [`crate::RankCtx::note_blocked_on`] / [`crate::RankCtx::note_call`]); a
/// rank that never set them reports `None`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RankDiag {
    /// The stuck rank.
    pub rank: usize,
    /// What the rank reported it was blocked on when it last parked.
    pub blocked_on: Option<String>,
    /// The last library call the rank entered.
    pub last_call: Option<String>,
}

/// Terminal failures of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while one or more ranks were still parked:
    /// no future event can ever wake them. This is the simulated analogue of
    /// an MPI deadlock (e.g. two blocking rendezvous sends to each other).
    Deadlock {
        /// Ranks that were parked when the queue drained.
        parked: Vec<usize>,
        /// Virtual time at which the deadlock was detected.
        at: crate::Time,
        /// One diagnostic snapshot per parked rank, in `parked` order.
        diags: Vec<RankDiag>,
    },
    /// The host OS refused to spawn a rank's worker thread.
    SpawnFailed {
        /// The rank whose thread could not be created.
        rank: usize,
        /// The OS error.
        message: String,
    },
    /// Engine invariant violation: a rank reported `Done` without handing
    /// over its activity log.
    MissingRankLog {
        /// The offending rank.
        rank: usize,
    },
    /// A rank's body panicked; the message is the stringified payload.
    RankPanic {
        /// The panicking rank.
        rank: usize,
        /// Stringified panic payload.
        message: String,
    },
    /// Virtual time exceeded [`crate::SimOpts::max_time`].
    TimeLimitExceeded {
        /// The configured limit, ns.
        limit: crate::Time,
    },
    /// More events were processed than [`crate::SimOpts::max_events`] allows
    /// (guards against livelock in buggy protocols).
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { parked, at, diags } => {
                write!(
                    f,
                    "simulated deadlock at t={}ns: ranks {:?} are parked with no pending events",
                    at, parked
                )?;
                for d in diags {
                    write!(
                        f,
                        "\n  rank {}: blocked on {}",
                        d.rank,
                        d.blocked_on.as_deref().unwrap_or("<no note>")
                    )?;
                    if let Some(call) = &d.last_call {
                        write!(f, " (last call {call})")?;
                    }
                }
                Ok(())
            }
            SimError::SpawnFailed { rank, message } => {
                write!(f, "failed to spawn thread for rank {}: {}", rank, message)
            }
            SimError::MissingRankLog { rank } => {
                write!(f, "rank {} finished without an activity log", rank)
            }
            SimError::RankPanic { rank, message } => {
                write!(f, "rank {} panicked: {}", rank, message)
            }
            SimError::TimeLimitExceeded { limit } => {
                write!(f, "virtual time limit exceeded ({}ns)", limit)
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "event limit exceeded ({} events)", limit)
            }
        }
    }
}

impl std::error::Error for SimError {}
