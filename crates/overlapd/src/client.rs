//! The client half of the framed ingest protocol (`repro push`,
//! `--stream`).

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;

/// Target frame size; lines are never split across frames, so actual frames
/// may exceed this by one line's length (still far below the server's
/// limit).
const FRAME_TARGET: usize = 60 << 10;

/// Why a push failed.
#[derive(Debug)]
pub enum PushError {
    /// Transport failure (connect, write, or read).
    Io(io::Error),
    /// The server refused the stream (schema mismatch, malformed line, ...):
    /// the one-line reason it replied with.
    Refused(String),
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Io(e) => write!(f, "transport error: {e}"),
            PushError::Refused(msg) => write!(f, "server refused stream: {msg}"),
        }
    }
}

impl std::error::Error for PushError {}

impl From<io::Error> for PushError {
    fn from(e: io::Error) -> Self {
        PushError::Io(e)
    }
}

/// Push a block of JSONL text to `addr` under `session`. Returns the event
/// count the server acknowledged.
pub fn push_text(addr: &str, session: &str, text: &str) -> Result<u64, PushError> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writer.write_all(format!("OVLP1 {session}\n").as_bytes())?;

    let mut frame = String::with_capacity(FRAME_TARGET + 1024);
    for line in text.lines() {
        frame.push_str(line);
        frame.push('\n');
        if frame.len() >= FRAME_TARGET {
            write_frame(&mut writer, frame.as_bytes())?;
            frame.clear();
        }
    }
    if !frame.is_empty() {
        write_frame(&mut writer, frame.as_bytes())?;
    }
    write_frame(&mut writer, b"")?; // zero frame: end of stream
    writer.flush()?;

    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    let reply = reply.trim_end();
    if let Some(rest) = reply.strip_prefix("ok events=") {
        rest.parse::<u64>()
            .map_err(|_| PushError::Refused(format!("unparseable reply {reply:?}")))
    } else if let Some(msg) = reply.strip_prefix("err ") {
        Err(PushError::Refused(msg.to_string()))
    } else {
        Err(PushError::Refused(format!("unexpected reply {reply:?}")))
    }
}

/// Push a `.events.jsonl` file to `addr` under `session`.
pub fn push_file(addr: &str, session: &str, path: &Path) -> Result<u64, PushError> {
    let text = std::fs::read_to_string(path)?;
    push_text(addr, session, &text)
}

fn write_frame<W: Write>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)
}
