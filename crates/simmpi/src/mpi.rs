//! The per-rank MPI endpoint: point-to-point operations, the polling
//! progress engine, and the instrumentation stamps.
//!
//! The polling engine is the default; [`crate::config::ProgressModel`]
//! selects the alternative progress designs (async progress fiber,
//! early-bird delivery, NIC tag matching) documented in `docs/PROGRESS.md`.
//!
//! # Stamp placement (paper Sec. 2.1 analogues)
//!
//! | role | `XFER_BEGIN` | `XFER_END` |
//! |---|---|---|
//! | eager sender | send WR posted | send completion polled |
//! | eager receiver | *(invisible)* | arrival polled (end-only) |
//! | direct-read sender | RTS posted | FIN polled |
//! | direct-read receiver | RDMA Read posted | read completion polled |
//! | pipelined sender | each fragment posted | each fragment completion |
//! | pipelined receiver (frag 1) | *(invisible)* | RTS+frag1 polled (end-only) |
//! | pipelined receiver (rest) | CTS posted | FIN polled |
//!
//! # Locking discipline
//!
//! Fabric state is touched only in short lock scopes; all host-time charges
//! (`RankCtx::busy`) and parks happen with the lock released (see
//! `simnet::world` module docs for why this is load-bearing).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use overlap_core::{OverlapReport, Recorder, RecorderOpts, WaitCause, XferTimeTable};
use simcore::{Activity, Duration, RankCtx, Time};
use simnet::{Completion, NetConfig, NicStats, Packet, RegionId, SharedWorld, XferId};

use crate::config::{MpiConfig, ProgressModel, RndvMode};
use crate::proto::{self, wr_kind};
use crate::reliability::{RelStats, Reliability};
use crate::types::{PersistentOp, Request, Src, Status, TagSel};

/// Sentinel meaning "this message is not a data transfer" (zero-payload
/// synchronization packets).
const NO_XFER: u64 = u64::MAX;
/// Local (receiver-allocated) transfer-id namespace, disjoint from fabric
/// ids.
const LOCAL_XFER_BIT: u64 = 1 << 63;

struct Posted {
    req: u64,
    src: Src,
    tag: TagSel,
}

enum Arrival {
    Eager {
        src: usize,
        tag: u64,
        xfer: u64,
        data: Bytes,
        /// Sender request to ACK on match (synchronous sends).
        ack_req: Option<u64>,
        /// Payload already copied out of the bounce buffer (early-bird
        /// delivery paid the copy at arrival-processing time).
        copied: bool,
    },
    RtsRead {
        src: usize,
        tag: u64,
        len: usize,
        region: RegionId,
        xfer: u64,
        sender_req: u64,
    },
    RtsPipe {
        src: usize,
        tag: u64,
        total_len: usize,
        frag1: Bytes,
        sender_req: u64,
    },
}

impl Arrival {
    fn envelope(&self) -> (usize, u64) {
        match self {
            Arrival::Eager { src, tag, .. }
            | Arrival::RtsRead { src, tag, .. }
            | Arrival::RtsPipe { src, tag, .. } => (*src, *tag),
        }
    }
}

struct PipeRecv {
    region: RegionId,
    total_len: usize,
    rest_xfer: u64,
    rest_len: u64,
}

enum Req {
    SendEager {
        done: bool,
        /// Reap on completion without an explicit wait (buffered MPI_Send).
        detached: bool,
        /// Local wire completion observed.
        wire_done: bool,
        /// Receiver-matched ACK still outstanding (synchronous sends).
        awaiting_ack: bool,
        xfer: u64,
        bytes: u64,
        peer: usize,
        tag: u64,
    },
    SendRdvRead {
        done: bool,
        xfer: u64,
        bytes: u64,
        region: RegionId,
        keep_region: bool,
        peer: usize,
        tag: u64,
    },
    SendRdvPipe {
        done: bool,
        data: Bytes,
        frag1_len: usize,
        /// (xfer id, len) per posted-but-uncompleted fragment, in post order.
        frags: VecDeque<(u64, u64)>,
        /// Completions still outstanding.
        remaining: usize,
        /// True once every fragment has been posted (CTS received or
        /// single-fragment message).
        all_posted: bool,
        peer: usize,
        tag: u64,
    },
    Recv {
        done: bool,
        result: Option<Status>,
        /// Direct-read in flight: (xfer id, len).
        reading: Option<(u64, u64)>,
        /// Resolved envelope once matched.
        matched: Option<(usize, u64)>,
        pipe: Option<PipeRecv>,
    },
}

impl Req {
    fn is_done(&self) -> bool {
        match self {
            Req::SendEager { done, .. }
            | Req::SendRdvRead { done, .. }
            | Req::SendRdvPipe { done, .. }
            | Req::Recv { done, .. } => *done,
        }
    }
}

/// The per-rank MPI library endpoint.
///
/// Created by [`crate::harness::run_mpi`] (or directly via [`Mpi::init`]);
/// consumed by [`Mpi::finalize`], which returns the per-process
/// [`OverlapReport`].
pub struct Mpi<'a> {
    ctx: &'a mut RankCtx,
    world: SharedWorld,
    cfg: MpiConfig,
    net: NetConfig,
    pub(crate) rec: Recorder,
    rank: usize,
    nranks: usize,
    reqs: HashMap<u64, Req>,
    next_req: u64,
    next_local_xfer: u64,
    posted: Vec<Posted>,
    unexpected: VecDeque<Arrival>,
    /// MRU registration cache for rendezvous send buffers, keyed by length.
    /// `busy` entries back an in-flight send and must not be reused or
    /// evicted until its FIN arrives (reusing one would overwrite data the
    /// receiver has not pulled yet).
    send_reg_cache: VecDeque<(usize, RegionId, bool)>,
    /// Lengths whose receive-side pinning cost has been paid (cache mode).
    recv_pin_cache: VecDeque<usize>,
    /// Per-communicator collective sequence numbers (tag scoping).
    comm_seqs: HashMap<u64, u64>,
    /// Count of `comm_split` calls (world-collective, so all ranks agree).
    split_seq: u64,
    /// Active non-blocking collectives, advanced by the progress engine.
    icolls: HashMap<u64, crate::icoll::ICollState>,
    next_icoll: u64,
    /// Sequence/ACK/retransmission layer; pass-through on loss-free fabrics.
    rel: Reliability,
    /// Transfers the reliability layer had to retransmit (timeout or NACK).
    /// Blocking on one of these classifies as an ACK/retransmit wait rather
    /// than a protocol wait. Only filled while wait tracing is on.
    retrans_xfers: HashSet<u64>,
    /// Rendered blocked-on notes keyed by the state fingerprint each one
    /// describes. `wait_for_event` parks on every poll miss, and a steady
    /// communication pattern cycles through a small set of fingerprints, so
    /// the cache keeps every note it has rendered (bounded: cleared in the
    /// unlikely event it grows past a few dozen entries) and a park is
    /// normally just a linear probe plus an `Arc` clone.
    blocked_note_cache: Vec<(BlockedFingerprint, Arc<str>)>,
    /// Schedule oracle snapshot (taken at init). When present, the progress
    /// engine's CQ-vs-RX drain preference becomes an explicit choice point;
    /// when absent the canonical CQ-first policy applies unconditionally.
    oracle: Option<simcore::OracleHandle>,
    /// The world communicator, built once so `comm_world()` (called by every
    /// collective, including the per-iteration barriers of the micro
    /// harnesses) never reallocates the member list.
    pub(crate) world_comm: crate::comm::Comm,
}

/// The pieces of per-rank state the blocked-on diagnostic renders. Two equal
/// fingerprints produce the same note text.
type BlockedFingerprint = (usize, usize, usize, usize, usize, usize);

impl<'a> Mpi<'a> {
    /// Initialize the library on this rank (the `MPI_Init` analogue: loads
    /// the a-priori transfer-time table into the recorder and synchronizes
    /// all ranks with a barrier).
    pub fn init(
        ctx: &'a mut RankCtx,
        world: SharedWorld,
        cfg: MpiConfig,
        table: XferTimeTable,
        rec_opts: RecorderOpts,
    ) -> Self {
        let rank = ctx.rank();
        let nranks = ctx.nranks();
        let handle = ctx.handle();
        let clock = move || handle.now();
        let rec = Recorder::new(rank, Box::new(clock), table, rec_opts);
        let net = world.lock().cfg().clone();
        // The reliability layer activates only when the fabric can actually
        // lose/duplicate/reorder packets; otherwise it is pass-through and
        // the wire behavior is identical to the reliability-unaware library.
        let rel_enabled = !net.faults.is_empty();
        let rel_timeout = cfg.retrans_timeout.unwrap_or_else(|| {
            // A few round trips at the largest eager payload: long enough
            // that in-flight packets are not spuriously resent, short enough
            // to matter within one figure run.
            4 * (net.transfer_time(cfg.eager_threshold) + net.transfer_time(net.ctrl_packet_bytes))
        });
        let rel = Reliability::new(
            rel_enabled,
            rank,
            rel_timeout,
            cfg.max_retries,
            net.ctrl_packet_bytes,
            ctx.handle(),
        );
        let oracle = ctx.handle().oracle();
        let mut mpi = Mpi {
            ctx,
            world,
            cfg,
            net,
            rec,
            rank,
            nranks,
            reqs: HashMap::new(),
            next_req: 0,
            next_local_xfer: 0,
            posted: Vec::new(),
            unexpected: VecDeque::new(),
            send_reg_cache: VecDeque::new(),
            recv_pin_cache: VecDeque::new(),
            comm_seqs: HashMap::new(),
            split_seq: 0,
            icolls: HashMap::new(),
            next_icoll: 0,
            rel,
            retrans_xfers: HashSet::new(),
            blocked_note_cache: Vec::new(),
            oracle,
            world_comm: crate::comm::Comm::world(nranks, rank),
        };
        mpi.call_enter("MPI_Init");
        mpi.barrier_inner();
        mpi.rec.call_exit();
        mpi
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Current virtual time, ns.
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// Perform user computation for `d` ns (outside the library — this is
    /// what the overlap bounds measure against).
    ///
    /// Under [`ProgressModel::AsyncRank`] the dedicated progress fiber
    /// time-multiplexes with the application: every `poll_interval` ns of
    /// compute it briefly takes the core and drives the progress engine, so
    /// a long computation is chunked at the fiber's poll boundaries and the
    /// stolen cycles appear as compute slowdown.
    pub fn compute(&mut self, d: Duration) {
        if let ProgressModel::AsyncRank { poll_interval } = self.cfg.progress {
            let mut left = d;
            while left > poll_interval {
                self.ctx.compute(poll_interval);
                left -= poll_interval;
                self.progress_wake();
            }
            self.ctx.compute(left);
        } else {
            self.ctx.compute(d);
        }
    }

    /// One wake of the `async-rank` progress fiber: re-enter the library
    /// mid-compute and drive the progress engine. The first `poll_cost`
    /// slice of the wake — the quantum the fiber always costs, pending work
    /// or not — is recorded as a `progress_steal` wait so attribution can
    /// price the steal exactly. Under exploration, a wake that has host
    /// events pending is a scheduling choice point: the canonical
    /// alternative (`0`) drains them now, `1` defers to the next boundary.
    fn progress_wake(&mut self) {
        if let Some(orc) = &self.oracle {
            if self.world.lock().has_host_events(self.rank) {
                let pick = orc.choose(simcore::ChoicePoint::ProgressWake {
                    rank: self.rank,
                    n: 2,
                });
                if pick == 1 {
                    return;
                }
            }
        }
        self.call_enter("MPI_Progress");
        let t0 = self.ctx.handle().now();
        self.progress();
        if self.rec.wait_tracing() && self.net.poll_cost > 0 {
            // Exactly the poll quantum charged first inside `progress`, so
            // the interval can never overlap a wait recorded later in the
            // same wake (e.g. a registration triggered by a drained RTS).
            self.rec
                .wait_state(t0, t0 + self.net.poll_cost, WaitCause::ProgressSteal, None);
        }
        self.rec.call_exit();
    }

    /// Begin a monitored code section (application-level control over what
    /// the framework reports; paper Sec. 2.3).
    pub fn section_begin(&mut self, name: &'static str) {
        self.rec.section_begin(name);
    }

    /// End the innermost monitored section.
    pub fn section_end(&mut self) {
        self.rec.section_end();
    }

    /// Suspend overlap monitoring (must be called between, not inside,
    /// library calls). See `overlap_core::Recorder::pause`.
    pub fn monitoring_pause(&mut self) {
        self.rec.pause();
    }

    /// Resume overlap monitoring.
    pub fn monitoring_resume(&mut self) {
        self.rec.resume();
    }

    /// Subscribe a PERUSE-style observer to the raw instrumentation event
    /// stream (see `overlap_core::observer`); e.g. a `TraceSink` writing a
    /// JSON-lines trace file.
    pub fn set_event_observer(&mut self, obs: Box<dyn overlap_core::EventObserver>) {
        self.rec.set_observer(obs);
    }

    /// Detach and return the current event observer.
    pub fn take_event_observer(&mut self) -> Option<Box<dyn overlap_core::EventObserver>> {
        self.rec.take_observer()
    }

    /// Elapsed virtual time in seconds (the `MPI_Wtime` analogue).
    pub fn wtime(&self) -> f64 {
        self.now() as f64 / 1e9
    }

    /// Shut down: synchronize, then emit this process's overlap report.
    pub fn finalize(self) -> OverlapReport {
        self.finalize_with_stats().0
    }

    /// [`Mpi::finalize`], additionally returning the reliability-layer
    /// counters (final values: the teardown flush may still bump them).
    pub fn finalize_with_stats(self) -> (OverlapReport, RelStats) {
        let (report, stats, _) = self.finalize_full();
        (report, stats)
    }

    /// [`Mpi::finalize_with_stats`], additionally returning the
    /// time-resolved trace when `RecorderOpts::trace` was set on init
    /// (`None` otherwise).
    pub fn finalize_full(
        mut self,
    ) -> (
        OverlapReport,
        RelStats,
        Option<overlap_core::trace::RankTrace>,
    ) {
        self.call_enter("MPI_Finalize");
        self.barrier_inner();
        // Reliability flush: a rank must not tear down while any of its
        // packets is un-ACKed — a peer might still need a retransmission
        // that only this rank's progress engine can produce. The deadline
        // wake-ups scheduled per pending packet guarantee the park below is
        // always bounded.
        while self.rel.enabled && self.rel.has_pending() {
            self.wait_for_event();
            self.progress();
        }
        self.rec.call_exit();
        let stats = self.rel.stats();
        let (report, trace) = self.rec.finish_traced();
        (report, stats, trace)
    }

    // ---- public point-to-point API ------------------------------------

    /// Non-blocking send.
    pub fn isend(&mut self, dst: usize, tag: u64, data: &[u8]) -> Request {
        self.call_enter("MPI_Isend");
        let r = self.isend_inner(dst, tag, data, true);
        self.rec.call_exit();
        r
    }

    /// Non-blocking receive.
    pub fn irecv(&mut self, src: Src, tag: TagSel) -> Request {
        self.call_enter("MPI_Irecv");
        let r = self.irecv_inner(src, tag);
        self.rec.call_exit();
        r
    }

    /// Blocking send.
    ///
    /// For eager-sized messages this has *buffered* semantics, as in real
    /// MPI implementations: the payload is already copied into a library
    /// buffer, so the call returns without waiting for the wire — the
    /// transfer can still overlap subsequent computation (paper Sec. 1:
    /// "even with blocking operations, the system can transparently allow
    /// for overlap by copying data to internal message buffers"). Rendezvous
    /// sends block until the transfer completes.
    pub fn send(&mut self, dst: usize, tag: u64, data: &[u8]) {
        self.call_enter("MPI_Send");
        let r = self.isend_inner(dst, tag, data, true);
        if data.len() <= self.cfg.eager_threshold {
            self.detach(r);
        } else {
            self.wait_inner(r);
        }
        self.rec.call_exit();
    }

    /// Fire-and-forget a request: the progress engine reaps it (and stamps
    /// its completion) whenever that happens to be observed.
    fn detach(&mut self, r: Request) {
        if let Some(Req::SendEager { done, detached, .. }) = self.reqs.get_mut(&r.0) {
            if *done {
                self.reqs.remove(&r.0);
            } else {
                *detached = true;
            }
        } else {
            unreachable!("detach of non-eager request");
        }
    }

    /// Blocking receive.
    pub fn recv(&mut self, src: Src, tag: TagSel) -> Status {
        self.call_enter("MPI_Recv");
        let r = self.irecv_inner(src, tag);
        let st = self.wait_inner(r);
        self.rec.call_exit();
        st
    }

    /// Wait for one request.
    pub fn wait(&mut self, req: Request) -> Status {
        self.call_enter("MPI_Wait");
        let st = self.wait_inner(req);
        self.rec.call_exit();
        st
    }

    /// Wait for all given requests; statuses in request order.
    pub fn waitall(&mut self, reqs: &[Request]) -> Vec<Status> {
        self.call_enter("MPI_Waitall");
        let out = reqs.iter().map(|&r| self.wait_inner(r)).collect();
        self.rec.call_exit();
        out
    }

    /// Wait until at least one request completes; returns all completed
    /// `(index, status)` pairs (`MPI_Waitsome`).
    pub fn waitsome(&mut self, reqs: &[Request]) -> Vec<(usize, Status)> {
        assert!(!reqs.is_empty(), "waitsome on empty request list");
        self.call_enter("MPI_Waitsome");
        let out = loop {
            self.progress();
            let ready: Vec<usize> = reqs
                .iter()
                .enumerate()
                .filter(|(_, r)| self.reqs.get(&r.0).map(Req::is_done).unwrap_or(false))
                .map(|(i, _)| i)
                .collect();
            if !ready.is_empty() {
                break ready
                    .into_iter()
                    .map(|i| (i, self.try_take(reqs[i]).expect("just completed")))
                    .collect();
            }
            self.wait_for_event();
        };
        self.rec.call_exit();
        out
    }

    /// Non-blocking completion test.
    pub fn test(&mut self, req: Request) -> bool {
        self.call_enter("MPI_Test");
        self.progress();
        let done = self.reqs.get(&req.0).map(Req::is_done).unwrap_or(true);
        self.rec.call_exit();
        done
    }

    /// Non-blocking probe for a matching unexpected message. Crucially, this
    /// *invokes the progress engine* — which is why sprinkling `MPI_Iprobe`
    /// through a computation region improves overlap (the paper's NAS SP
    /// tuning, Sec. 4.3).
    pub fn iprobe(&mut self, src: Src, tag: TagSel) -> bool {
        self.call_enter("MPI_Iprobe");
        self.progress();
        let found = self.probe_hit(src, tag).is_some();
        self.rec.call_exit();
        found
    }

    /// Combined send+receive (deadlock-free pairwise exchange).
    pub fn sendrecv(
        &mut self,
        dst: usize,
        send_tag: u64,
        data: &[u8],
        src: Src,
        recv_tag: TagSel,
    ) -> Status {
        self.call_enter("MPI_Sendrecv");
        let sr = self.isend_inner(dst, send_tag, data, true);
        let rr = self.irecv_inner(src, recv_tag);
        self.wait_inner(sr);
        let st = self.wait_inner(rr);
        self.rec.call_exit();
        st
    }

    /// Synchronous send: completes only once the receiver has matched the
    /// message (eager sends wait for a receiver ACK; rendezvous completion
    /// already implies a match).
    pub fn ssend(&mut self, dst: usize, tag: u64, data: &[u8]) {
        self.call_enter("MPI_Ssend");
        let r = self.isend_impl(dst, tag, data, true, true);
        self.wait_inner(r);
        self.rec.call_exit();
    }

    /// Non-blocking synchronous send.
    pub fn issend(&mut self, dst: usize, tag: u64, data: &[u8]) -> Request {
        self.call_enter("MPI_Issend");
        let r = self.isend_impl(dst, tag, data, true, true);
        self.rec.call_exit();
        r
    }

    /// Blocking probe: waits until a matching message is available (without
    /// receiving it) and returns its envelope `(source, tag)`.
    pub fn probe(&mut self, src: Src, tag: TagSel) -> (usize, u64) {
        self.call_enter("MPI_Probe");
        let env = loop {
            self.progress();
            if let Some(env) = self.probe_hit(src, tag) {
                break env;
            }
            self.wait_for_event();
        };
        self.rec.call_exit();
        env
    }

    /// Envelope of the first probeable unexpected message, if any: the host
    /// unexpected queue under software matching, the NIC unexpected queue
    /// under `hw-tag`.
    fn probe_hit(&self, src: Src, tag: TagSel) -> Option<(usize, u64)> {
        if self.cfg.progress == ProgressModel::HwTag {
            let (s, t) = hw_selector(src, tag);
            return self.world.lock().hw_probe(self.rank, s, t);
        }
        self.unexpected
            .iter()
            .find(|a| envelope_matches(a.envelope(), src, tag))
            .map(|a| a.envelope())
    }

    /// Wait for any one of the given requests; returns its index and status.
    pub fn waitany(&mut self, reqs: &[Request]) -> (usize, Status) {
        assert!(!reqs.is_empty(), "waitany on empty request list");
        self.call_enter("MPI_Waitany");
        let out = loop {
            self.progress();
            let ready = reqs
                .iter()
                .position(|r| self.reqs.get(&r.0).map(Req::is_done).unwrap_or(false));
            if let Some(idx) = ready {
                let st = self.try_take(reqs[idx]).expect("request just completed");
                break (idx, st);
            }
            self.wait_for_event();
        };
        self.rec.call_exit();
        out
    }

    /// Non-blocking test of a whole set: true iff every request is complete
    /// (no request is consumed either way).
    pub fn testall(&mut self, reqs: &[Request]) -> bool {
        self.call_enter("MPI_Testall");
        self.progress();
        let all = reqs
            .iter()
            .all(|r| self.reqs.get(&r.0).map(Req::is_done).unwrap_or(true));
        self.rec.call_exit();
        all
    }

    /// Create a persistent send specification (`MPI_Send_init`).
    pub fn send_init(&self, dst: usize, tag: u64, data: &[u8]) -> PersistentOp {
        PersistentOp::Send {
            dst,
            tag,
            data: data.to_vec(),
        }
    }

    /// Create a persistent receive specification (`MPI_Recv_init`).
    pub fn recv_init(&self, src: Src, tag: TagSel) -> PersistentOp {
        PersistentOp::Recv { src, tag }
    }

    /// Start one persistent operation (`MPI_Start`); complete it with
    /// [`Mpi::wait`] like any other request.
    pub fn start(&mut self, op: &PersistentOp) -> Request {
        self.call_enter("MPI_Start");
        let r = match op {
            PersistentOp::Send { dst, tag, data } => self.isend_inner(*dst, *tag, data, true),
            PersistentOp::Recv { src, tag } => self.irecv_inner(*src, *tag),
        };
        self.rec.call_exit();
        r
    }

    /// Start a set of persistent operations (`MPI_Startall`).
    pub fn startall(&mut self, ops: &[PersistentOp]) -> Vec<Request> {
        self.call_enter("MPI_Startall");
        let rs = ops
            .iter()
            .map(|op| match op {
                PersistentOp::Send { dst, tag, data } => self.isend_inner(*dst, *tag, data, true),
                PersistentOp::Recv { src, tag } => self.irecv_inner(*src, *tag),
            })
            .collect();
        self.rec.call_exit();
        rs
    }

    // ---- internals ------------------------------------------------------

    fn lib_busy(&mut self, d: Duration) {
        self.ctx.busy(d, Activity::Library);
    }

    /// Memory-registration host time: charged exactly like [`Mpi::lib_busy`]
    /// (identical virtual time), but recorded as a registration wait so
    /// attribution can separate pinning cost from generic library overhead.
    fn reg_busy(&mut self, d: Duration) {
        let t0 = self.ctx.handle().now();
        self.lib_busy(d);
        if self.rec.wait_tracing() {
            let t1 = self.ctx.handle().now();
            self.rec.wait_state(t0, t1, WaitCause::Registration, None);
        }
    }

    fn alloc_req(&mut self) -> u64 {
        let id = self.next_req;
        self.next_req += 1;
        id
    }

    fn alloc_local_xfer(&mut self) -> u64 {
        let id = LOCAL_XFER_BIT | self.next_local_xfer;
        self.next_local_xfer += 1;
        id
    }

    pub(crate) fn isend_inner(
        &mut self,
        dst: usize,
        tag: u64,
        data: &[u8],
        counted: bool,
    ) -> Request {
        self.isend_impl(dst, tag, data, counted, false)
    }

    fn isend_impl(
        &mut self,
        dst: usize,
        tag: u64,
        data: &[u8],
        counted: bool,
        sync: bool,
    ) -> Request {
        self.progress();
        self.isend_raw(dst, tag, data, counted, sync)
    }

    /// Post a send without invoking the progress engine (used by the
    /// non-blocking collective machines, which already run *inside*
    /// `progress`).
    pub(crate) fn isend_raw(
        &mut self,
        dst: usize,
        tag: u64,
        data: &[u8],
        counted: bool,
        sync: bool,
    ) -> Request {
        let req_id = self.alloc_req();
        let len = data.len();
        if self.cfg.progress == ProgressModel::HwTag {
            // NIC tag matching: every send — data and synchronization alike
            // — goes through the hardware matching engine, so there is a
            // single matching domain and the host never handles envelopes.
            if !counted || len <= self.cfg.eager_threshold {
                self.hw_send_eager(req_id, dst, tag, data, counted, sync);
            } else {
                // Both rendezvous modes collapse to a NIC-initiated pull.
                self.hw_send_rndv(req_id, dst, tag, data);
            }
            return Request(req_id);
        }
        if !counted || len <= self.cfg.eager_threshold {
            self.send_eager(req_id, dst, tag, data, counted, sync);
        } else {
            // Rendezvous completion already implies the receiver matched, so
            // synchronous mode needs nothing extra.
            match self.cfg.rndv_mode {
                RndvMode::DirectRead => self.send_rndv_read(req_id, dst, tag, data),
                RndvMode::PipelinedWrite => self.send_rndv_pipe(req_id, dst, tag, data),
            }
        }
        Request(req_id)
    }

    fn send_eager(
        &mut self,
        req_id: u64,
        dst: usize,
        tag: u64,
        data: &[u8],
        counted: bool,
        sync: bool,
    ) {
        let len = data.len();
        if counted {
            // Copy into the pre-registered bounce buffer, then post.
            self.lib_busy(self.net.copy_cost(len) + self.net.post_cost);
        } else {
            self.lib_busy(self.net.post_cost);
        }
        let wire = len + self.net.ctrl_packet_bytes;
        let xfer;
        {
            let mut w = self.world.lock();
            let xfer_id = if counted {
                Some(w.alloc_xfer_id())
            } else {
                None
            };
            xfer = xfer_id.map_or(NO_XFER, |x| x.0);
            let ty = if counted {
                proto::PT_EAGER
            } else {
                proto::PT_BARRIER
            };
            let pkt = Packet::with_data(
                self.rank,
                wire,
                ty,
                [tag, xfer, sync as u64, req_id, 0, 0],
                Bytes::copy_from_slice(data),
            );
            self.rel.post(
                &mut w,
                dst,
                pkt,
                proto::pack_user(wr_kind::EAGER_SEND, req_id),
                xfer_id,
            );
        }
        if counted {
            self.rec.xfer_begin(xfer, len as u64);
        }
        self.reqs.insert(
            req_id,
            Req::SendEager {
                done: false,
                detached: false,
                wire_done: false,
                awaiting_ack: sync,
                xfer,
                bytes: len as u64,
                peer: dst,
                tag,
            },
        );
    }

    fn send_rndv_read(&mut self, req_id: u64, dst: usize, tag: u64, data: &[u8]) {
        let len = data.len();
        // A cache hit must be an *idle* entry: busy regions back in-flight
        // sends whose data the receiver has not pulled yet.
        let cached = self.cfg.use_reg_cache
            && self
                .send_reg_cache
                .iter()
                .any(|&(cached_len, _, busy)| cached_len == len && !busy);
        if !cached {
            self.reg_busy(self.net.reg_cost(len));
        }
        self.lib_busy(self.net.post_cost);
        let wire = self.net.ctrl_packet_bytes;
        let xfer;
        let region;
        {
            let mut w = self.world.lock();
            region = Self::acquire_send_region(
                &mut self.send_reg_cache,
                &self.cfg,
                self.rank,
                &mut w,
                len,
                data,
                cached,
            );
            xfer = w.alloc_xfer_id().0;
            let rts = Packet::control(
                self.rank,
                wire,
                proto::PT_RTS_READ,
                [tag, len as u64, region.0, xfer, req_id, 0],
            );
            self.rel
                .post(&mut w, dst, rts, proto::pack_user(wr_kind::IGNORE, 0), None);
        }
        self.rec.xfer_begin(xfer, len as u64);
        self.reqs.insert(
            req_id,
            Req::SendRdvRead {
                done: false,
                xfer,
                bytes: len as u64,
                region,
                keep_region: self.cfg.use_reg_cache,
                peer: dst,
                tag,
            },
        );
    }

    /// Pin (or reuse from the MRU cache) a registered region holding `data`
    /// for a rendezvous send. `cached` is the pre-computed hit flag (whose
    /// host cost the caller has already charged or skipped).
    fn acquire_send_region(
        send_reg_cache: &mut VecDeque<(usize, RegionId, bool)>,
        cfg: &MpiConfig,
        rank: usize,
        w: &mut simnet::World,
        len: usize,
        data: &[u8],
        cached: bool,
    ) -> RegionId {
        if cached {
            let pos = send_reg_cache
                .iter()
                .position(|&(l, _, busy)| l == len && !busy)
                .unwrap();
            let (_, r, _) = send_reg_cache.remove(pos).unwrap();
            // MRU: move to front, mark busy; refresh contents (it *is*
            // the user buffer — zero-copy, so no host copy cost).
            send_reg_cache.push_front((len, r, true));
            w.mem_mut(rank)
                .get_mut(r)
                .expect("cached region vanished")
                .copy_from_slice(data);
            r
        } else {
            let r = w.register(rank, data.to_vec());
            if cfg.use_reg_cache {
                send_reg_cache.push_front((len, r, true));
                if send_reg_cache.len() > cfg.reg_cache_entries {
                    // Evict the least-recently-used *idle* entry; if all
                    // are busy the cache temporarily exceeds capacity.
                    if let Some(pos) = send_reg_cache.iter().rposition(|&(_, _, busy)| !busy) {
                        let (_, evicted, _) = send_reg_cache.remove(pos).unwrap();
                        w.deregister(rank, evicted);
                    }
                }
            }
            r
        }
    }

    /// Eager send through the NIC tag matcher (`hw-tag` model). Host costs
    /// match the classic eager path — the bounce-buffer copy and the post
    /// are still host work — but matching and any synchronous-mode ACK are
    /// NIC-side: the ACK arrives as a [`wr_kind::HW_MATCHED`] completion
    /// scheduled by the matching NIC, not as a host-built packet.
    fn hw_send_eager(
        &mut self,
        req_id: u64,
        dst: usize,
        tag: u64,
        data: &[u8],
        counted: bool,
        sync: bool,
    ) {
        let len = data.len();
        if counted {
            self.lib_busy(self.net.copy_cost(len) + self.net.post_cost);
        } else {
            self.lib_busy(self.net.post_cost);
        }
        let wire = len + self.net.ctrl_packet_bytes;
        let xfer;
        {
            let mut w = self.world.lock();
            let xfer_id = if counted {
                Some(w.alloc_xfer_id())
            } else {
                None
            };
            xfer = xfer_id.map_or(NO_XFER, |x| x.0);
            let ack_user = sync.then(|| proto::pack_user(wr_kind::HW_MATCHED, req_id));
            w.hw_send(
                self.rank,
                dst,
                tag,
                Bytes::copy_from_slice(data),
                wire,
                xfer,
                proto::pack_user(wr_kind::EAGER_SEND, req_id),
                ack_user,
                xfer_id,
            );
        }
        if counted {
            self.rec.xfer_begin(xfer, len as u64);
        }
        self.reqs.insert(
            req_id,
            Req::SendEager {
                done: false,
                detached: false,
                wire_done: false,
                awaiting_ack: sync,
                xfer,
                bytes: len as u64,
                peer: dst,
                tag,
            },
        );
    }

    /// Rendezvous send through the NIC tag matcher: registration is still
    /// host work, but the RTS is matched in the receiving NIC, which pulls
    /// the data itself and fires the FIN back — zero receiver-host
    /// involvement. The sender-side request state and FIN handling are
    /// shared with the classic direct-read path.
    fn hw_send_rndv(&mut self, req_id: u64, dst: usize, tag: u64, data: &[u8]) {
        let len = data.len();
        let cached = self.cfg.use_reg_cache
            && self
                .send_reg_cache
                .iter()
                .any(|&(cached_len, _, busy)| cached_len == len && !busy);
        if !cached {
            self.reg_busy(self.net.reg_cost(len));
        }
        self.lib_busy(self.net.post_cost);
        let xfer;
        let region;
        {
            let mut w = self.world.lock();
            region = Self::acquire_send_region(
                &mut self.send_reg_cache,
                &self.cfg,
                self.rank,
                &mut w,
                len,
                data,
                cached,
            );
            xfer = w.alloc_xfer_id().0;
            // FIN template the pulling NIC sends us on completion; it reuses
            // the classic direct-read FIN so the sender-side handler is
            // identical. Its `src` is the receiver (the pull initiator).
            let fin = Packet::control(
                dst,
                self.net.ctrl_packet_bytes,
                proto::PT_FIN_READ,
                [req_id, xfer, len as u64, 0, 0, 0],
            );
            w.hw_send_rndv(
                self.rank,
                dst,
                tag,
                len,
                region,
                XferId(xfer),
                proto::pack_user(wr_kind::IGNORE, 0),
                fin,
            );
        }
        self.rec.xfer_begin(xfer, len as u64);
        self.reqs.insert(
            req_id,
            Req::SendRdvRead {
                done: false,
                xfer,
                bytes: len as u64,
                region,
                keep_region: self.cfg.use_reg_cache,
                peer: dst,
                tag,
            },
        );
    }

    fn send_rndv_pipe(&mut self, req_id: u64, dst: usize, tag: u64, data: &[u8]) {
        let len = data.len();
        let frag1_len = len.min(self.cfg.fragment_size);
        self.lib_busy(self.net.copy_cost(frag1_len) + self.net.post_cost);
        let data = Bytes::copy_from_slice(data);
        let frag1_xfer;
        {
            let mut w = self.world.lock();
            let x = w.alloc_xfer_id();
            frag1_xfer = x.0;
            let pkt = Packet::with_data(
                self.rank,
                frag1_len + self.net.ctrl_packet_bytes,
                proto::PT_RTS_PIPE,
                [tag, len as u64, frag1_xfer, req_id, 0, 0],
                data.slice(0..frag1_len),
            );
            self.rel.post(
                &mut w,
                dst,
                pkt,
                proto::pack_user(wr_kind::FRAG_WRITE, req_id),
                Some(x),
            );
        }
        self.rec.xfer_begin(frag1_xfer, frag1_len as u64);
        let mut frags = VecDeque::new();
        frags.push_back((frag1_xfer, frag1_len as u64));
        self.reqs.insert(
            req_id,
            Req::SendRdvPipe {
                done: false,
                data,
                frag1_len,
                frags,
                remaining: 1,
                all_posted: frag1_len == len,
                peer: dst,
                tag,
            },
        );
    }

    pub(crate) fn irecv_inner(&mut self, src: Src, tag: TagSel) -> Request {
        self.progress();
        self.irecv_raw(src, tag)
    }

    /// Post a receive without invoking the progress engine.
    pub(crate) fn irecv_raw(&mut self, src: Src, tag: TagSel) -> Request {
        let req_id = self.alloc_req();
        self.reqs.insert(
            req_id,
            Req::Recv {
                done: false,
                result: None,
                reading: None,
                matched: None,
                pipe: None,
            },
        );
        if self.cfg.progress == ProgressModel::HwTag {
            // Post the receive descriptor into the NIC matching table; the
            // host pays the post, the NIC does everything else. Matching
            // results come back as `HW_RECV` completions.
            self.lib_busy(self.net.post_cost);
            let (s, t) = hw_selector(src, tag);
            self.world.lock().hw_post_recv(
                self.rank,
                s,
                t,
                proto::pack_user(wr_kind::HW_RECV, req_id),
            );
            return Request(req_id);
        }
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|a| envelope_matches(a.envelope(), src, tag))
        {
            let arrival = self.unexpected.remove(pos).unwrap();
            self.deliver(req_id, arrival);
        } else {
            self.posted.push(Posted {
                req: req_id,
                src,
                tag,
            });
        }
        Request(req_id)
    }

    /// Route a matched arrival into the protocol continuation.
    fn deliver(&mut self, req_id: u64, arrival: Arrival) {
        match arrival {
            Arrival::Eager {
                src,
                tag,
                xfer,
                data,
                ack_req,
                copied,
            } => {
                if xfer != NO_XFER && !copied {
                    // Copy out of the library bounce buffer.
                    self.lib_busy(self.net.copy_cost(data.len()));
                }
                if let Some(sender_req) = ack_req {
                    // Synchronous send: tell the sender we matched.
                    let mut w = self.world.lock();
                    let ack = Packet::control(
                        self.rank,
                        self.net.ctrl_packet_bytes,
                        proto::PT_SSEND_ACK,
                        [sender_req, 0, 0, 0, 0, 0],
                    );
                    self.rel
                        .post(&mut w, src, ack, proto::pack_user(wr_kind::IGNORE, 0), None);
                }
                self.complete_recv(req_id, src, tag, data);
            }
            Arrival::RtsRead {
                src,
                tag,
                len,
                region,
                xfer,
                sender_req,
            } => {
                self.start_read(req_id, src, tag, len, region, xfer, sender_req);
            }
            Arrival::RtsPipe {
                src,
                tag,
                total_len,
                frag1,
                sender_req,
            } => {
                self.start_pipe_recv(req_id, src, tag, total_len, frag1, sender_req);
            }
        }
    }

    fn complete_recv(&mut self, req_id: u64, src: usize, tag: u64, data: Bytes) {
        let req = self.reqs.get_mut(&req_id).expect("unknown recv request");
        match req {
            Req::Recv { done, result, .. } => {
                *done = true;
                *result = Some(Status {
                    source: src,
                    tag,
                    data: Some(data),
                });
            }
            _ => unreachable!("completing non-recv request"),
        }
    }

    /// Direct-read rendezvous: the receiver pulls the advertised buffer.
    #[allow(clippy::too_many_arguments)]
    fn start_read(
        &mut self,
        req_id: u64,
        src: usize,
        tag: u64,
        len: usize,
        region: RegionId,
        xfer: u64,
        sender_req: u64,
    ) {
        // Receive-side pinning (cached after first use in cache mode).
        let cached = self.cfg.use_reg_cache && self.recv_pin_cache.contains(&len);
        if !cached {
            self.reg_busy(self.net.reg_cost(len));
            if self.cfg.use_reg_cache {
                self.recv_pin_cache.push_front(len);
                self.recv_pin_cache.truncate(self.cfg.reg_cache_entries);
            }
        }
        self.lib_busy(self.net.post_cost);
        {
            let mut w = self.world.lock();
            let fin = Packet::control(
                self.rank,
                self.net.ctrl_packet_bytes,
                proto::PT_FIN_READ,
                [sender_req, xfer, len as u64, 0, 0, 0],
            );
            w.post_rdma_read(
                self.rank,
                src,
                region,
                0,
                len,
                proto::pack_user(wr_kind::RDMA_READ, req_id),
                Some(fin),
                Some(XferId(xfer)),
            );
        }
        self.rec.xfer_begin(xfer, len as u64);
        if let Some(Req::Recv {
            reading, matched, ..
        }) = self.reqs.get_mut(&req_id)
        {
            *reading = Some((xfer, len as u64));
            *matched = Some((src, tag));
        } else {
            unreachable!("start_read on non-recv request");
        }
    }

    /// Pipelined rendezvous: place fragment 1, CTS back the receive buffer.
    fn start_pipe_recv(
        &mut self,
        req_id: u64,
        src: usize,
        tag: u64,
        total_len: usize,
        frag1: Bytes,
        sender_req: u64,
    ) {
        let frag1_len = frag1.len();
        if total_len == frag1_len {
            // Entire message rode with the RTS.
            self.lib_busy(self.net.copy_cost(frag1_len));
            self.complete_recv(req_id, src, tag, frag1);
            return;
        }
        // Register the receive buffer and invite the RDMA Writes.
        self.reg_busy(self.net.reg_cost(total_len));
        self.lib_busy(self.net.post_cost);
        let rest_len = (total_len - frag1_len) as u64;
        let rest_xfer = self.alloc_local_xfer();
        {
            let mut w = self.world.lock();
            let region = w.register(self.rank, vec![0u8; total_len]);
            w.mem_mut(self.rank).get_mut(region).unwrap()[..frag1_len].copy_from_slice(&frag1);
            let cts = Packet::control(
                self.rank,
                self.net.ctrl_packet_bytes,
                proto::PT_CTS,
                [sender_req, region.0, req_id, 0, 0, 0],
            );
            self.rel
                .post(&mut w, src, cts, proto::pack_user(wr_kind::IGNORE, 0), None);
            if let Some(Req::Recv { pipe, matched, .. }) = self.reqs.get_mut(&req_id) {
                *pipe = Some(PipeRecv {
                    region,
                    total_len,
                    rest_xfer,
                    rest_len,
                });
                *matched = Some((src, tag));
            } else {
                unreachable!("start_pipe_recv on non-recv request");
            }
        }
        self.rec.xfer_begin(rest_xfer, rest_len);
    }

    // ---- progress engine ------------------------------------------------

    /// Drive the protocol: drain completions and packets until quiescent.
    /// Called from *every* library entry point — progress only happens while
    /// the application is inside the library (polling semantics).
    pub(crate) fn progress(&mut self) {
        self.lib_busy(self.net.poll_cost);
        loop {
            enum Item {
                C(Completion),
                P(Packet),
            }
            let item = {
                let mut w = self.world.lock();
                match &self.oracle {
                    // Exploration: when both the completion queue and the
                    // receive queue are non-empty, which to drain first is a
                    // real interleaving choice. Choice 0 is the canonical
                    // CQ-first policy.
                    Some(orc) => {
                        let st = w.nic_stats(self.rank);
                        if st.cq_backlog > 0 && st.rx_backlog > 0 {
                            let pick = orc.choose(simcore::ChoicePoint::ProgressPoll {
                                rank: self.rank,
                                n: 2,
                            });
                            if pick == 1 {
                                w.poll_rx(self.rank).map(Item::P)
                            } else {
                                w.poll_cq(self.rank).map(Item::C)
                            }
                        } else if st.cq_backlog > 0 {
                            w.poll_cq(self.rank).map(Item::C)
                        } else {
                            w.poll_rx(self.rank).map(Item::P)
                        }
                    }
                    None => {
                        if let Some(c) = w.poll_cq(self.rank) {
                            Some(Item::C(c))
                        } else {
                            w.poll_rx(self.rank).map(Item::P)
                        }
                    }
                }
            };
            match item {
                None => break,
                Some(Item::C(c)) => self.handle_completion(c),
                Some(Item::P(p)) => self.handle_packet(p),
            }
        }
        if self.rel.enabled {
            let flagged = {
                let mut w = self.world.lock();
                self.rel.check_timeouts(&mut w)
            };
            for xfer in flagged {
                // The wire had to carry this transfer again; its a-priori
                // time no longer bounds the observed window.
                self.rec.xfer_flag(xfer);
                if self.rec.wait_tracing() {
                    self.retrans_xfers.insert(xfer);
                }
            }
        }
        self.advance_collectives();
    }

    /// Reliability-layer counters for this rank (all zero on a loss-free
    /// fabric).
    pub fn reliability_stats(&self) -> RelStats {
        self.rel.stats()
    }

    fn handle_completion(&mut self, c: Completion) {
        let (kind, req_id) = proto::unpack_user(c.user);
        match kind {
            wr_kind::IGNORE => {}
            wr_kind::EAGER_SEND => {
                let mut reap = false;
                if let Some(Req::SendEager {
                    done,
                    detached,
                    wire_done,
                    awaiting_ack,
                    xfer,
                    bytes,
                    ..
                }) = self.reqs.get_mut(&req_id)
                {
                    *wire_done = true;
                    // Synchronous sends additionally wait for the
                    // receiver-matched ACK.
                    if !*awaiting_ack {
                        *done = true;
                        reap = *detached;
                    }
                    let (xfer, bytes) = (*xfer, *bytes);
                    if xfer != NO_XFER {
                        self.rec.xfer_end(xfer, bytes);
                        self.rec.note_contention(xfer, c.edge.contention_ns());
                    }
                }
                if reap {
                    self.reqs.remove(&req_id);
                }
            }
            wr_kind::FRAG_WRITE => {
                let mut finish: Option<(u64, u64)> = None;
                let mut req_done = false;
                if let Some(Req::SendRdvPipe {
                    done,
                    frags,
                    remaining,
                    all_posted,
                    ..
                }) = self.reqs.get_mut(&req_id)
                {
                    let (xfer, len) = frags.pop_front().expect("fragment completion underflow");
                    finish = Some((xfer, len));
                    *remaining -= 1;
                    if *remaining == 0 && *all_posted {
                        *done = true;
                        req_done = true;
                    }
                }
                if let Some((xfer, len)) = finish {
                    self.rec.xfer_end(xfer, len);
                    self.rec.note_contention(xfer, c.edge.contention_ns());
                }
                let _ = req_done;
            }
            wr_kind::RDMA_READ => {
                let data = c.data.expect("RDMA read completion without data");
                let mut stamp: Option<(u64, u64)> = None;
                let mut env: Option<(usize, u64)> = None;
                if let Some(Req::Recv {
                    reading, matched, ..
                }) = self.reqs.get_mut(&req_id)
                {
                    stamp = reading.take();
                    env = *matched;
                }
                let (xfer, len) = stamp.expect("read completion without reading state");
                self.rec.xfer_end(xfer, len);
                self.rec.note_contention(xfer, c.edge.contention_ns());
                let (src, tag) = env.expect("read completion on unmatched recv");
                self.complete_recv(req_id, src, tag, data);
            }
            wr_kind::HW_RECV => {
                // NIC-matched receive (hw-tag model): the data was placed
                // directly in the application buffer, so the host pays no
                // copy. The envelope and transfer id ride in the immediate
                // words. End-only stamp: the host first observes the
                // transfer at its completion — NIC matching is invisible.
                let data = c.data.expect("hw recv completion without data");
                let (src, tag, xfer) = (c.imm[0] as usize, c.imm[1], c.imm[2]);
                if xfer != NO_XFER {
                    self.rec.xfer_end(xfer, data.len() as u64);
                    self.rec.note_contention(xfer, c.edge.contention_ns());
                }
                self.complete_recv(req_id, src, tag, data);
            }
            wr_kind::HW_MATCHED => {
                // NIC match notification for a synchronous hw-tag send.
                if let Some(Req::SendEager {
                    done,
                    detached,
                    wire_done,
                    awaiting_ack,
                    ..
                }) = self.reqs.get_mut(&req_id)
                {
                    *awaiting_ack = false;
                    if *wire_done {
                        *done = true;
                        debug_assert!(!*detached, "synchronous sends are always waited");
                    }
                }
            }
            other => panic!("unknown completion kind {other}"),
        }
    }

    /// Front half of packet handling: the reliability filter. ACK/NACK
    /// packets terminate here; sequenced packets are deduplicated and
    /// reordered, then delivered in sequence order. On a loss-free fabric
    /// every packet falls straight through to the protocol handler.
    fn handle_packet(&mut self, p: Packet) {
        if self.rel.enabled {
            match p.ty {
                proto::PT_ACK => {
                    self.rel.on_ack(p.src, p.h[0]);
                    return;
                }
                proto::PT_NACK => {
                    let flagged = {
                        let mut w = self.world.lock();
                        self.rel.on_nack(&mut w, p.src, p.h[0])
                    };
                    if let Some(xfer) = flagged {
                        self.rec.xfer_flag(xfer);
                        if self.rec.wait_tracing() {
                            self.retrans_xfers.insert(xfer);
                        }
                    }
                    return;
                }
                _ => {}
            }
            if p.h[5] != 0 {
                let deliverable = {
                    let mut w = self.world.lock();
                    self.rel.on_sequenced(&mut w, p)
                };
                for q in deliverable {
                    self.handle_packet_inner(q);
                }
                return;
            }
        }
        self.handle_packet_inner(p);
    }

    /// Protocol packet handling proper (post-reliability).
    fn handle_packet_inner(&mut self, p: Packet) {
        let arrival = match p.ty {
            proto::PT_EAGER => {
                let xfer = p.h[1];
                let data = p.data.expect("eager packet without payload");
                // End-only stamp: the receiver never saw the initiation.
                self.rec.xfer_end(xfer, data.len() as u64);
                self.rec.note_contention(xfer, p.edge.contention_ns());
                Arrival::Eager {
                    src: p.src,
                    tag: p.h[0],
                    xfer,
                    data,
                    ack_req: (p.h[2] != 0).then_some(p.h[3]),
                    copied: false,
                }
            }
            proto::PT_BARRIER => Arrival::Eager {
                src: p.src,
                tag: p.h[0],
                xfer: NO_XFER,
                data: p.data.unwrap_or_default(),
                ack_req: None,
                copied: false,
            },
            proto::PT_SSEND_ACK => {
                let sender_req = p.h[0];
                if let Some(Req::SendEager {
                    done,
                    detached,
                    wire_done,
                    awaiting_ack,
                    ..
                }) = self.reqs.get_mut(&sender_req)
                {
                    *awaiting_ack = false;
                    if *wire_done {
                        *done = true;
                        debug_assert!(!*detached, "synchronous sends are always waited");
                    }
                }
                return;
            }
            proto::PT_RTS_READ => Arrival::RtsRead {
                src: p.src,
                tag: p.h[0],
                len: p.h[1] as usize,
                region: RegionId(p.h[2]),
                xfer: p.h[3],
                sender_req: p.h[4],
            },
            proto::PT_RTS_PIPE => {
                let frag1 = p.data.expect("RTS_PIPE without fragment");
                // Fragment 1 is observable only on arrival: end-only stamp.
                self.rec.xfer_end(p.h[2], frag1.len() as u64);
                self.rec.note_contention(p.h[2], p.edge.contention_ns());
                Arrival::RtsPipe {
                    src: p.src,
                    tag: p.h[0],
                    total_len: p.h[1] as usize,
                    frag1,
                    sender_req: p.h[3],
                }
            }
            proto::PT_CTS => {
                self.handle_cts(p);
                return;
            }
            proto::PT_FIN_READ => {
                let sender_req = p.h[0];
                let mut dereg: Option<RegionId> = None;
                let mut stamp: Option<(u64, u64)> = None;
                if let Some(Req::SendRdvRead {
                    done,
                    xfer,
                    bytes,
                    region,
                    keep_region,
                    ..
                }) = self.reqs.get_mut(&sender_req)
                {
                    *done = true;
                    stamp = Some((*xfer, *bytes));
                    if !*keep_region {
                        dereg = Some(*region);
                    }
                }
                let (xfer, bytes) = stamp.expect("FIN for unknown rendezvous send");
                debug_assert_eq!(xfer, p.h[1]);
                self.rec.xfer_end(xfer, bytes);
                if let Some(r) = dereg {
                    self.world.lock().deregister(self.rank, r);
                } else if let Some(Req::SendRdvRead { region, .. }) = self.reqs.get(&sender_req) {
                    // Cached mode: the region's data has been pulled — its
                    // cache entry becomes reusable.
                    let region = *region;
                    if let Some(e) = self
                        .send_reg_cache
                        .iter_mut()
                        .find(|(_, r, _)| *r == region)
                    {
                        e.2 = false;
                    }
                }
                return;
            }
            proto::PT_FIN_PIPE => {
                let recv_req = p.h[0];
                let mut pipe_state: Option<PipeRecv> = None;
                let mut env: Option<(usize, u64)> = None;
                if let Some(Req::Recv { pipe, matched, .. }) = self.reqs.get_mut(&recv_req) {
                    pipe_state = pipe.take();
                    env = *matched;
                }
                let pipe = pipe_state.expect("FIN_PIPE without pipe state");
                self.rec.xfer_end(pipe.rest_xfer, pipe.rest_len);
                // The FIN rides as the final fragment's delivery notice, so
                // its edge carries that fragment's fabric contention.
                self.rec
                    .note_contention(pipe.rest_xfer, p.edge.contention_ns());
                let data = {
                    let mut w = self.world.lock();
                    Bytes::from(w.deregister(self.rank, pipe.region))
                };
                debug_assert_eq!(data.len(), pipe.total_len);
                let (src, tag) = env.expect("FIN_PIPE on unmatched recv");
                self.complete_recv(recv_req, src, tag, data);
                return;
            }
            other => panic!("unknown packet type {other}"),
        };
        // Match against posted receives, else queue as unexpected.
        let mut arrival = arrival;
        let env = arrival.envelope();
        if let Some(pos) = self
            .posted
            .iter()
            .position(|p| envelope_matches(env, p.src, p.tag))
        {
            let posted = self.posted.remove(pos);
            self.deliver(posted.req, arrival);
        } else {
            if self.cfg.progress == ProgressModel::EarlyBird {
                // Early-bird delivery: pay the bounce-buffer copy while
                // processing the arrival, so the receive that eventually
                // matches this message pays nothing and late-sender waits
                // shrink by exactly the copy cost.
                if let Arrival::Eager {
                    xfer, data, copied, ..
                } = &mut arrival
                {
                    if *xfer != NO_XFER {
                        let d = self.net.copy_cost(data.len());
                        *copied = true;
                        self.lib_busy(d);
                    }
                }
            }
            self.unexpected.push_back(arrival);
        }
    }

    /// Sender side of the pipelined scheme: the CTS names the receive buffer;
    /// post all remaining fragments (the last one carries the FIN).
    fn handle_cts(&mut self, p: Packet) {
        let (sender_req, recv_region, recv_req) = (p.h[0], RegionId(p.h[1]), p.h[2]);
        let (data, frag1_len, peer) = match self.reqs.get(&sender_req) {
            Some(Req::SendRdvPipe {
                data,
                frag1_len,
                peer,
                ..
            }) => (data.clone(), *frag1_len, *peer),
            _ => panic!("CTS for unknown pipelined send"),
        };
        let total = data.len();
        let frag_size = self.cfg.fragment_size;
        let nfrags = (total - frag1_len).div_ceil(frag_size);
        self.lib_busy(self.net.post_cost * nfrags as u64);
        let mut new_frags: Vec<(u64, u64)> = Vec::with_capacity(nfrags);
        {
            let mut w = self.world.lock();
            let mut off = frag1_len;
            while off < total {
                let end = (off + frag_size).min(total);
                let x = w.alloc_xfer_id();
                let is_last = end == total;
                let fin = is_last.then(|| {
                    Packet::control(
                        self.rank,
                        self.net.ctrl_packet_bytes,
                        proto::PT_FIN_PIPE,
                        [recv_req, 0, 0, 0, 0, 0],
                    )
                });
                w.post_rdma_write(
                    self.rank,
                    peer,
                    recv_region,
                    off,
                    data.slice(off..end),
                    proto::pack_user(wr_kind::FRAG_WRITE, sender_req),
                    fin,
                    Some(x),
                );
                new_frags.push((x.0, (end - off) as u64));
                off = end;
            }
        }
        for &(xfer, len) in &new_frags {
            self.rec.xfer_begin(xfer, len);
        }
        if let Some(Req::SendRdvPipe {
            frags,
            remaining,
            all_posted,
            ..
        }) = self.reqs.get_mut(&sender_req)
        {
            for f in new_frags {
                frags.push_back(f);
            }
            *remaining += nfrags;
            *all_posted = true;
        }
    }

    // ---- waiting ----------------------------------------------------------

    pub(crate) fn wait_inner(&mut self, req: Request) -> Status {
        loop {
            self.progress();
            if let Some(st) = self.try_take(req) {
                return st;
            }
            self.wait_for_event();
        }
    }

    /// Is the request complete (not consumed)?
    pub(crate) fn req_done(&self, req: Request) -> bool {
        self.reqs.get(&req.0).map(Req::is_done).unwrap_or(true)
    }

    /// Consume a completed request's status (panics if incomplete).
    pub(crate) fn take_status(&mut self, req: Request) -> Status {
        self.try_take(req).expect("request not complete")
    }

    fn try_take(&mut self, req: Request) -> Option<Status> {
        if !self
            .reqs
            .get(&req.0)
            .map(Req::is_done)
            .unwrap_or_else(|| panic!("wait on unknown request {:?}", req))
        {
            return None;
        }
        let r = self.reqs.remove(&req.0).unwrap();
        Some(match r {
            Req::Recv { result, .. } => result.expect("done recv without status"),
            Req::SendEager { peer, tag, .. }
            | Req::SendRdvRead { peer, tag, .. }
            | Req::SendRdvPipe { peer, tag, .. } => Status {
                source: peer,
                tag,
                data: None,
            },
        })
    }

    /// Record a library-call entry both in the overlap event stream and in
    /// the engine's deadlock diagnostic (last call per rank).
    pub(crate) fn call_enter(&mut self, name: &'static str) {
        self.rec.call_enter(name);
        self.ctx.note_call(name);
    }

    /// Park until the NIC has something for us (unless it already does).
    /// Before parking, leave a blocked-on note so a deadlock dump can say
    /// what this rank was waiting for.
    fn wait_for_event(&mut self) {
        let (has, nic) = {
            let w = self.world.lock();
            (w.has_host_events(self.rank), w.nic_stats(self.rank))
        };
        if !has {
            let note = self.blocked_note(nic);
            self.ctx.note_blocked_on(note);
            let (peer, req) = self.blocking_edge();
            self.ctx.note_waiting_on(peer, req);
            if self.rec.wait_tracing() {
                // Classify *before* parking: the open-request state at block
                // time is what explains the wait. Recording adds zero
                // virtual time, so traced runs stay time-identical.
                let (mut cause, xfer) = self.classify_block();
                let t0 = self.ctx.handle().now();
                self.ctx.park();
                let t1 = self.ctx.handle().now();
                // The reliability layer runs while the rank is parked: if the
                // very transfer this wait was pinned on got retransmitted in
                // the meantime, loss recovery — not the pre-park protocol
                // state — is what the wait was spent on.
                if let Some(x) = xfer {
                    if cause != WaitCause::AckRetransmit && self.retrans_xfers.contains(&x) {
                        cause = WaitCause::AckRetransmit;
                    }
                }
                self.rec.wait_state(t0, t1, cause, xfer);
            } else {
                self.ctx.park();
            }
        }
    }

    /// Classify why this rank is about to block, from its open-request
    /// state. When several requests are open the most *actionable* cause
    /// wins (lowest priority number); ties break on request id, so the
    /// result is independent of `HashMap` iteration order.
    fn classify_block(&self) -> (WaitCause, Option<u64>) {
        // Loss recovery trumps protocol state: once a payload has been
        // retransmitted and its ACK is still outstanding, the stall is the
        // lossy fabric's fault no matter what the open requests look like.
        // (The fragment itself may already have left the request's queue —
        // a dropped packet still completes at the *source* NIC — so only
        // the reliability layer still knows about it.)
        if let Some(x) = self.rel.retrans_pending_xfer() {
            return (WaitCause::AckRetransmit, Some(x));
        }
        // (priority, req_id) -> (cause, xfer)
        type Ranked = ((u8, u64), (WaitCause, Option<u64>));
        let mut best: Option<Ranked> = None;
        for (&req_id, req) in &self.reqs {
            if req.is_done() {
                continue;
            }
            let (prio, cause, xfer) = match req {
                _ if self.req_retransmitted(req) => (
                    0,
                    WaitCause::AckRetransmit,
                    self.req_retrans_xfer(req).or_else(|| self.req_xfer(req)),
                ),
                Req::Recv {
                    matched: None,
                    reading: None,
                    pipe: None,
                    ..
                } => (1, WaitCause::LateSender, None),
                Req::SendRdvPipe {
                    all_posted: false, ..
                } => (2, WaitCause::RendezvousHandshake, None),
                Req::SendRdvRead { xfer, .. } => (3, WaitCause::LateReceiver, Some(*xfer)),
                Req::SendEager {
                    awaiting_ack: true,
                    wire_done: true,
                    xfer,
                    ..
                } => (4, WaitCause::LateReceiver, Some(*xfer)),
                Req::Recv {
                    reading: Some((xfer, _)),
                    ..
                } => (5, WaitCause::WireDrain, Some(*xfer)),
                Req::Recv { pipe: Some(pr), .. } => (5, WaitCause::WireDrain, Some(pr.rest_xfer)),
                Req::SendRdvPipe { .. } => (6, WaitCause::WireDrain, None),
                Req::SendEager { xfer, .. } => (7, WaitCause::EagerCopy, Some(*xfer)),
                Req::Recv { .. } => (5, WaitCause::WireDrain, None),
            };
            let key = (prio, req_id);
            if best.as_ref().is_none_or(|(k, _)| key < *k) {
                best = Some((key, (cause, xfer)));
            }
        }
        match best {
            Some((_, hit)) => hit,
            // No open data request: blocked on the reliability layer's
            // outstanding ACKs, or on pure synchronization traffic.
            None if self.rel.pending_packets() > 0 => (WaitCause::AckRetransmit, None),
            None => (WaitCause::Sync, None),
        }
    }

    /// The structured wait-for edge for deadlock cycle reports: the peer
    /// rank whose action must come first, and the open request id this rank
    /// is blocked in. Picks the open request with the lowest id (matching
    /// the deterministic tie-break of [`Mpi::classify_block`]); a receive
    /// names its matched or posted-source peer, `MPI_ANY_SOURCE` receives
    /// name none. With no open data request the edge falls back to the
    /// reliability layer's first un-ACKed peer.
    fn blocking_edge(&self) -> (Option<usize>, Option<u64>) {
        let mut best: Option<(u64, Option<usize>)> = None;
        for (&req_id, req) in &self.reqs {
            if req.is_done() {
                continue;
            }
            if best.is_some_and(|(id, _)| id <= req_id) {
                continue;
            }
            let peer = match req {
                Req::SendEager { peer, .. }
                | Req::SendRdvRead { peer, .. }
                | Req::SendRdvPipe { peer, .. } => Some(*peer),
                Req::Recv {
                    matched: Some((src, _)),
                    ..
                } => Some(*src),
                Req::Recv { .. } => {
                    self.posted
                        .iter()
                        .find(|p| p.req == req_id)
                        .and_then(|p| match p.src {
                            Src::Rank(r) => Some(r),
                            Src::Any => None,
                        })
                }
            };
            best = Some((req_id, peer));
        }
        match best {
            Some((id, peer)) => (peer, Some(id)),
            None => (self.rel.first_pending_peer(), None),
        }
    }

    /// True when the request's transfer is known to have been retransmitted.
    fn req_retransmitted(&self, req: &Req) -> bool {
        self.req_retrans_xfer(req).is_some()
    }

    /// The retransmitted wire transfer a request is still waiting on, if
    /// any. A pipelined send scans every outstanding fragment — the lost
    /// one is rarely the front of the queue.
    fn req_retrans_xfer(&self, req: &Req) -> Option<u64> {
        if let Req::SendRdvPipe { frags, .. } = req {
            return frags
                .iter()
                .map(|&(x, _)| x)
                .find(|x| self.retrans_xfers.contains(x));
        }
        self.req_xfer(req)
            .filter(|x| self.retrans_xfers.contains(x))
    }

    /// The single wire transfer a request is waiting on, when identifiable.
    fn req_xfer(&self, req: &Req) -> Option<u64> {
        match req {
            Req::SendEager { xfer, .. } | Req::SendRdvRead { xfer, .. } => Some(*xfer),
            Req::SendRdvPipe { frags, .. } => frags.front().map(|&(x, _)| x),
            Req::Recv {
                reading: Some((x, _)),
                ..
            } => Some(*x),
            Req::Recv { pipe: Some(pr), .. } => Some(pr.rest_xfer),
            Req::Recv { .. } => None,
        }
    }

    /// Snapshot of this rank's pending communication state, for the
    /// per-rank deadlock diagnostic. Cached: the text is re-rendered only
    /// when the state fingerprint differs from the previous park, which on
    /// the poll-park hot path almost never happens.
    fn blocked_note(&mut self, nic: NicStats) -> Arc<str> {
        let open_reqs = self.reqs.values().filter(|r| !r.is_done()).count();
        let fp: BlockedFingerprint = (
            open_reqs,
            self.posted.len(),
            self.unexpected.len(),
            self.rel.pending_packets(),
            nic.rx_backlog,
            nic.cq_backlog,
        );
        if let Some((_, note)) = self.blocked_note_cache.iter().find(|(c, _)| *c == fp) {
            return Arc::clone(note);
        }
        let note: Arc<str> = format!(
            "{} incomplete requests ({} posted recvs, {} unexpected arrivals, \
             {} un-ACKed sends); NIC backlog rx={} cq={}",
            fp.0, fp.1, fp.2, fp.3, fp.4, fp.5,
        )
        .into();
        // A run that keeps visiting new fingerprints (e.g. an ever-growing
        // backlog) must not hoard notes; past the cap, restart the cache.
        if self.blocked_note_cache.len() >= 64 {
            self.blocked_note_cache.clear();
        }
        self.blocked_note_cache.push((fp, Arc::clone(&note)));
        note
    }

    // ---- synchronization helpers (used by collectives) --------------------

    /// Dissemination barrier over zero-payload packets (not counted as data
    /// transfers). World-scoped; used by init/finalize.
    pub(crate) fn barrier_inner(&mut self) {
        let world = self.comm_world();
        self.barrier_comm_inner(&world);
    }

    /// Next collective sequence number for `comm_id` (members call the
    /// communicator's collectives in the same order, so these agree).
    pub(crate) fn next_comm_seq(&mut self, comm_id: u64) -> u64 {
        let seq = self.comm_seqs.entry(comm_id).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }

    /// Next `comm_split` sequence number (split is world-collective).
    pub(crate) fn next_split_seq(&mut self) -> u64 {
        let s = self.split_seq;
        self.split_seq += 1;
        s
    }

    // ---- non-blocking collective plumbing (see `icoll`) -------------------

    pub(crate) fn advance_collectives(&mut self) {
        if !self.icolls.is_empty() {
            self.advance_collectives_impl();
        }
    }

    pub(crate) fn icoll_insert(
        &mut self,
        st: crate::icoll::ICollState,
    ) -> crate::icoll::CollHandle {
        let id = self.next_icoll;
        self.next_icoll += 1;
        self.icolls.insert(id, st);
        crate::icoll::CollHandle(id)
    }

    pub(crate) fn icoll_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.icolls.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    pub(crate) fn icoll_remove(&mut self, id: u64) -> Option<crate::icoll::ICollState> {
        self.icolls.remove(&id)
    }

    pub(crate) fn icoll_put_back(&mut self, id: u64, st: crate::icoll::ICollState) {
        self.icolls.insert(id, st);
    }

    pub(crate) fn icoll_done(&self, h: crate::icoll::CollHandle) -> bool {
        self.icolls.get(&h.0).map(|s| s.done).unwrap_or(true)
    }

    pub(crate) fn icoll_take(&mut self, h: crate::icoll::CollHandle) -> crate::icoll::CollResult {
        self.icolls
            .remove(&h.0)
            .expect("collective already taken")
            .take_result()
    }

    pub(crate) fn icoll_park(&mut self) {
        self.wait_for_event();
    }
}

fn envelope_matches(env: (usize, u64), src: Src, tag: TagSel) -> bool {
    src.matches(env.0) && tag.matches(env.1)
}

/// Translate a receive selector into the NIC matching table's wildcard form.
fn hw_selector(src: Src, tag: TagSel) -> (Option<usize>, Option<u64>) {
    let s = match src {
        Src::Rank(r) => Some(r),
        Src::Any => None,
    };
    let t = match tag {
        TagSel::Is(v) => Some(v),
        TagSel::Any => None,
    };
    (s, t)
}
