//! Engine stress and edge-case tests: many ranks, wake storms, chained
//! event cascades, and scheduling corner cases.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simcore::{Activity, EngineHandle, SimError, SimOpts, Simulation};

#[test]
fn many_ranks_interleave_deterministically() {
    let run = || {
        let sim = Simulation::new(32);
        sim.run(SimOpts::default(), |ctx| {
            for i in 0..20 {
                ctx.compute(((ctx.rank() * 7 + i) % 13 + 1) as u64 * 100);
            }
        })
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.events_processed, b.events_processed);
    for (la, lb) in a.activity.iter().zip(&b.activity) {
        assert_eq!(la.entries(), lb.entries());
    }
}

#[test]
fn wake_storm_on_one_rank_coalesces() {
    // 1000 callbacks all waking the same parked rank at the same instant:
    // the wake-pending guard must coalesce them into one wake-up.
    let sim = Simulation::new(1);
    let handle = sim.handle();
    let fired = Arc::new(AtomicU64::new(0));
    for _ in 0..1000 {
        let fired = Arc::clone(&fired);
        handle.schedule_at(100, move |h| {
            fired.fetch_add(1, Ordering::Relaxed);
            h.wake_rank(0);
        });
    }
    let out = sim
        .run(SimOpts::default(), |ctx| {
            let mut wakes = 0;
            // Park repeatedly; each wake resumes us once.
            while ctx.now() < 100 {
                ctx.park();
                wakes += 1;
            }
            assert!(wakes <= 2, "wake storm not coalesced: {wakes} wakes");
        })
        .unwrap();
    assert_eq!(fired.load(Ordering::Relaxed), 1000);
    assert_eq!(out.end_time, 100);
}

#[test]
fn event_cascade_depth() {
    // A 10_000-deep chain of immediate callbacks must not recurse or stall.
    fn chain(h: &EngineHandle, remaining: u64) {
        if remaining == 0 {
            h.wake_rank(0);
        } else {
            h.schedule_in(1, move |h2| chain(h2, remaining - 1));
        }
    }
    let sim = Simulation::new(1);
    let handle = sim.handle();
    handle.schedule_at(0, |h| chain(h, 10_000));
    let out = sim.run(SimOpts::default(), |ctx| ctx.park()).unwrap();
    assert_eq!(out.end_time, 10_000);
    assert!(out.events_processed > 10_000);
}

#[test]
fn zero_duration_compute_is_free() {
    let sim = Simulation::new(1);
    let out = sim
        .run(SimOpts::default(), |ctx| {
            for _ in 0..100 {
                ctx.compute(0);
            }
            ctx.compute(5);
        })
        .unwrap();
    assert_eq!(out.end_time, 5);
    // Zero-length intervals are dropped from the log.
    assert_eq!(out.activity[0].entries().len(), 1);
}

#[test]
fn mixed_busy_kinds_partition_the_log() {
    let sim = Simulation::new(1);
    let out = sim
        .run(SimOpts::default(), |ctx| {
            ctx.compute(100);
            ctx.busy(50, Activity::Library);
            ctx.compute(25);
            ctx.busy(10, Activity::Library);
        })
        .unwrap();
    let log = &out.activity[0];
    assert_eq!(log.total(Activity::Compute), 125);
    assert_eq!(log.total(Activity::Library), 60);
    assert_eq!(log.end_time(), 185);
}

#[test]
fn rank_panics_surface_even_from_high_rank_counts() {
    let sim = Simulation::new(16);
    let err = sim
        .run(SimOpts::default(), |ctx| {
            ctx.compute(10 * (ctx.rank() as u64 + 1));
            if ctx.rank() == 13 {
                panic!("unlucky");
            }
        })
        .unwrap_err();
    match err {
        SimError::RankPanic { rank, message } => {
            assert_eq!(rank, 13);
            assert!(message.contains("unlucky"));
        }
        other => panic!("expected rank panic, got {other}"),
    }
}

#[test]
fn deadlock_reports_all_stuck_ranks() {
    let sim = Simulation::new(4);
    let err = sim
        .run(SimOpts::default(), |ctx| {
            if ctx.rank() % 2 == 0 {
                ctx.park(); // ranks 0 and 2 never woken
            } else {
                ctx.compute(100);
            }
        })
        .unwrap_err();
    match err {
        SimError::Deadlock { parked, at, .. } => {
            assert_eq!(parked, vec![0, 2]);
            assert_eq!(at, 100);
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn schedule_in_the_past_clamps_to_now() {
    let sim = Simulation::new(1);
    let handle = sim.handle();
    handle.schedule_at(50, |h| {
        // Asking for t=10 when now=50 must fire "immediately" (at 50).
        h.schedule_at(10, |h2| {
            assert_eq!(h2.now(), 50);
            h2.wake_rank(0);
        });
    });
    let out = sim.run(SimOpts::default(), |ctx| ctx.park()).unwrap();
    assert_eq!(out.end_time, 50);
}

#[test]
fn outcome_reports_event_counts() {
    let sim = Simulation::new(2);
    let out = sim
        .run(SimOpts::default(), |ctx| {
            ctx.compute(10);
            ctx.compute(10);
        })
        .unwrap();
    // 2 initial wakes + 2 sleeps each = at least 6 entries.
    assert!(out.events_processed >= 6);
}
