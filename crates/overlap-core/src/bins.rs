//! Message-size bins.
//!
//! The paper reports overlap "as a function of message size distribution,
//! such as short versus long, or a more detailed size distribution". Bins
//! are configurable; the default is a logarithmic ladder that separates the
//! eager/rendezvous regimes of typical libraries.

use serde::{Deserialize, Serialize};

/// A partition of message sizes into contiguous bins.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct SizeBins {
    /// Upper edges (exclusive) of all but the last bin, strictly increasing.
    /// Bin `i` covers `[edges[i-1], edges[i])`; the final bin is unbounded.
    edges: Vec<u64>,
}

impl Default for SizeBins {
    fn default() -> Self {
        SizeBins::log_default()
    }
}

impl SizeBins {
    /// Default ladder: <1K, 1K–8K, 8K–64K, 64K–512K, 512K–4M, ≥4M.
    pub fn log_default() -> Self {
        SizeBins {
            edges: vec![1 << 10, 8 << 10, 64 << 10, 512 << 10, 4 << 20],
        }
    }

    /// Coarse short/long split at an eager-threshold-like boundary.
    pub fn short_long(threshold: u64) -> Self {
        SizeBins {
            edges: vec![threshold],
        }
    }

    /// Custom edges (must be strictly increasing and non-empty).
    pub fn from_edges(edges: Vec<u64>) -> Self {
        assert!(!edges.is_empty(), "bins need at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "bin edges must be strictly increasing"
        );
        SizeBins { edges }
    }

    /// Number of bins (edges + 1).
    pub fn count(&self) -> usize {
        self.edges.len() + 1
    }

    /// Bin index for a message of `bytes`.
    pub fn index(&self, bytes: u64) -> usize {
        self.edges.partition_point(|&e| e <= bytes)
    }

    /// Human-readable label for bin `i`.
    pub fn label(&self, i: usize) -> String {
        let fmt = |b: u64| -> String {
            if b >= 1 << 20 && b.is_multiple_of(1 << 20) {
                format!("{}M", b >> 20)
            } else if b >= 1 << 10 && b.is_multiple_of(1 << 10) {
                format!("{}K", b >> 10)
            } else {
                format!("{b}B")
            }
        };
        if i == 0 {
            format!("<{}", fmt(self.edges[0]))
        } else if i == self.edges.len() {
            format!(">={}", fmt(self.edges[i - 1]))
        } else {
            format!("{}-{}", fmt(self.edges[i - 1]), fmt(self.edges[i]))
        }
    }

    /// All labels in bin order.
    pub fn labels(&self) -> Vec<String> {
        (0..self.count()).map(|i| self.label(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bins_index_correctly() {
        let b = SizeBins::log_default();
        assert_eq!(b.count(), 6);
        assert_eq!(b.index(0), 0);
        assert_eq!(b.index(1023), 0);
        assert_eq!(b.index(1024), 1);
        assert_eq!(b.index(10 * 1024), 2);
        assert_eq!(b.index(1 << 20), 4);
        assert_eq!(b.index(100 << 20), 5);
    }

    #[test]
    fn labels_are_human_readable() {
        let b = SizeBins::log_default();
        assert_eq!(b.label(0), "<1K");
        assert_eq!(b.label(1), "1K-8K");
        assert_eq!(b.label(5), ">=4M");
    }

    #[test]
    fn short_long_split() {
        let b = SizeBins::short_long(12 * 1024);
        assert_eq!(b.count(), 2);
        assert_eq!(b.index(12 * 1024 - 1), 0);
        assert_eq!(b.index(12 * 1024), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_edges_panic() {
        SizeBins::from_edges(vec![10, 10]);
    }
}
